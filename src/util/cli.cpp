#include "util/cli.hpp"

#include <cstdlib>

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

#include "util/check.hpp"

namespace cpr {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") return true;
  return false;
}

void apply_thread_cap(std::int64_t n) {
  if (n <= 0) return;
#ifdef CPR_HAVE_OPENMP
  omp_set_num_threads(static_cast<int>(n));
#endif
}

}  // namespace cpr
