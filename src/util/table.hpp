#pragma once
// Aligned console tables + CSV output for bench binaries.
//
// Every bench prints the paper's rows/series through this class so output
// formatting is uniform and machine-readable CSV can be produced with --csv.

#include <iosfwd>
#include <string>
#include <vector>

namespace cpr {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision, integers exactly.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::size_t v);

  /// Prints an aligned, boxed table to `os`.
  void print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows) to `path`.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpr
