#pragma once
// Leveled structured logging with a global verbosity switch.
//
// Training loops log per-sweep residuals at Debug; benches and the serving
// tools log progress at Info. Default level is Warn so test output stays
// clean; `CPR_LOG_LEVEL=debug|info|warn|error|off` overrides it and
// `CPR_LOG=json` switches the format from human-readable text to JSONL
// (one JSON object per line, machine-parsable).
//
// Every record — message plus optional key=value fields — is rendered into
// one complete line and emitted with a single write(2) to stderr, so
// concurrent loggers (dispatch workers, the hot-reload path, tuner
// progress) never interleave mid-line.

#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace cpr {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };
enum class LogFormat : int { Text = 0, Json = 1 };

/// Global log threshold (messages below it are dropped). Initialized from
/// `CPR_LOG_LEVEL` on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when `CPR_LOG_LEVEL` was set in the environment (tools that bump
/// their default verbosity check this so the operator's choice wins).
bool log_level_from_env();

/// Output format. Initialized from `CPR_LOG` (`json` selects JSONL).
LogFormat log_format();
void set_log_format(LogFormat format);

using LogField = std::pair<std::string, std::string>;

/// Structured record: message plus key/value fields, one atomic line.
/// Drops below the threshold like the macros do.
void log_line(LogLevel level, const std::string& message,
              std::initializer_list<LogField> fields);
void log_line(LogLevel level, const std::string& message,
              const std::vector<LogField>& fields);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace cpr

#define CPR_LOG(level, expr)                                   \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::cpr::log_level())) {                \
      std::ostringstream cpr_log_os;                           \
      cpr_log_os << expr;                                      \
      ::cpr::detail::log_emit(level, cpr_log_os.str());        \
    }                                                          \
  } while (0)

#define CPR_LOG_DEBUG(expr) CPR_LOG(::cpr::LogLevel::Debug, expr)
#define CPR_LOG_INFO(expr) CPR_LOG(::cpr::LogLevel::Info, expr)
#define CPR_LOG_WARN(expr) CPR_LOG(::cpr::LogLevel::Warn, expr)
#define CPR_LOG_ERROR(expr) CPR_LOG(::cpr::LogLevel::Error, expr)
