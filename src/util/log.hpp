#pragma once
// Leveled stderr logging with a global verbosity switch.
//
// Training loops log per-sweep residuals at Debug; benches log progress at
// Info. Default level is Warn so test output stays clean.

#include <iostream>
#include <sstream>
#include <string>

namespace cpr {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold (messages below it are dropped).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace cpr

#define CPR_LOG(level, expr)                                   \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::cpr::log_level())) {                \
      std::ostringstream cpr_log_os;                           \
      cpr_log_os << expr;                                      \
      ::cpr::detail::log_emit(level, cpr_log_os.str());        \
    }                                                          \
  } while (0)

#define CPR_LOG_DEBUG(expr) CPR_LOG(::cpr::LogLevel::Debug, expr)
#define CPR_LOG_INFO(expr) CPR_LOG(::cpr::LogLevel::Info, expr)
#define CPR_LOG_WARN(expr) CPR_LOG(::cpr::LogLevel::Warn, expr)
#define CPR_LOG_ERROR(expr) CPR_LOG(::cpr::LogLevel::Error, expr)
