#pragma once
// Monotonic wall-clock stopwatch used by benches and training loops.

#include <chrono>

namespace cpr {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cpr
