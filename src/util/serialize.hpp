#pragma once
// Binary serialization of model parameters.
//
// The paper measures model size by persisting fitted models to disk
// (Section 6.0.4, joblib). We measure the same quantity — bytes needed to
// reconstruct the fitted model — through a small archive abstraction every
// Regressor implements. ByteCountSink computes size without allocating.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/quantize.hpp"

namespace cpr {

/// Write-only archive interface.
class SerialSink {
 public:
  virtual ~SerialSink() = default;
  virtual void write_bytes(const void* data, std::size_t n) = 0;

  /// Element encoding matrix payloads use on this sink. F64 (the default)
  /// keeps the byte-identical version-1 layout; any other mode switches
  /// Matrix::serialize to the tagged version-2 block framing. Set by
  /// core::save_model_file from the --quantize request.
  QuantMode quant_mode() const { return quant_mode_; }
  void set_quant_mode(QuantMode mode) { quant_mode_ = mode; }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(&value, sizeof(T));
  }

  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }

  void write_doubles(const std::vector<double>& v) {
    write_u64(v.size());
    if (!v.empty()) write_bytes(v.data(), v.size() * sizeof(double));
  }

  void write_string(const std::string& s) {
    write_u64(s.size());
    if (!s.empty()) write_bytes(s.data(), s.size());
  }

 private:
  QuantMode quant_mode_ = QuantMode::F64;
};

/// Counts bytes only — used for model_size_bytes().
class ByteCountSink final : public SerialSink {
 public:
  void write_bytes(const void*, std::size_t n) override { count_ += n; }
  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

/// Accumulates bytes into a buffer — used for save/load round-trips.
class BufferSink final : public SerialSink {
 public:
  void write_bytes(const void* data, std::size_t n) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + n);
  }
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Read-side archive over a byte buffer.
class BufferSource {
 public:
  explicit BufferSource(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

  void read_bytes(void* out, std::size_t n) {
    // remaining()-based check: `pos_ + n` could wrap for a corrupt length.
    CPR_CHECK_MSG(n <= remaining(), "serialized buffer underrun");
    std::memcpy(out, buffer_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read_bytes(&value, sizeof(T));
    return value;
  }

  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  double read_f64() { return read_pod<double>(); }

  /// Reads an element count that the remaining bytes must be able to back
  /// (each element serializes to >= min_bytes_per_element bytes). Loaders
  /// use this before resizing containers, so a corrupt count in an archive
  /// fails loudly instead of driving a multi-gigabyte allocation.
  std::size_t read_count(std::size_t min_bytes_per_element = 1) {
    const auto n = read_u64();
    CPR_CHECK_MSG(n <= remaining() / min_bytes_per_element,
                  "serialized buffer underrun");
    return static_cast<std::size_t>(n);
  }

  std::vector<double> read_doubles() {
    const auto n = read_u64();
    // Validate against the remaining bytes BEFORE allocating: a corrupt
    // length field must fail loudly, not drive a huge allocation.
    CPR_CHECK_MSG(n <= remaining() / sizeof(double), "serialized buffer underrun");
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n) read_bytes(v.data(), static_cast<std::size_t>(n) * sizeof(double));
    return v;
  }

  std::string read_string() {
    const auto n = read_u64();
    CPR_CHECK_MSG(n <= remaining(), "serialized buffer underrun");
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n) read_bytes(s.data(), static_cast<std::size_t>(n));
    return s;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

  /// Bytes left to read.
  std::size_t remaining() const { return buffer_.size() - pos_; }

  /// Archive-declared matrix encoding (version-2 archives). When the tagged
  /// block framing is active, Matrix::deserialize reads quantized blocks and
  /// loaders must budget matrix payloads at min_matrix_bytes_per_element()
  /// instead of sizeof(double).
  QuantMode quant_mode() const { return quant_mode_; }
  bool quantized_framing() const { return quantized_framing_; }
  void set_quant_mode(QuantMode mode, bool quantized_framing) {
    quant_mode_ = mode;
    quantized_framing_ = quantized_framing;
  }

  /// Smallest on-disk footprint one matrix element can have under the
  /// active framing — the divisor for pre-allocation budget checks.
  std::size_t min_matrix_bytes_per_element() const {
    return quantized_framing_ ? 1 : sizeof(double);
  }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t pos_ = 0;
  QuantMode quant_mode_ = QuantMode::F64;
  bool quantized_framing_ = false;
};

}  // namespace cpr
