#pragma once
// Binary serialization of model parameters.
//
// The paper measures model size by persisting fitted models to disk
// (Section 6.0.4, joblib). We measure the same quantity — bytes needed to
// reconstruct the fitted model — through a small archive abstraction every
// Regressor implements. ByteCountSink computes size without allocating.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace cpr {

/// Write-only archive interface.
class SerialSink {
 public:
  virtual ~SerialSink() = default;
  virtual void write_bytes(const void* data, std::size_t n) = 0;

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(&value, sizeof(T));
  }

  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }

  void write_doubles(const std::vector<double>& v) {
    write_u64(v.size());
    if (!v.empty()) write_bytes(v.data(), v.size() * sizeof(double));
  }

  void write_string(const std::string& s) {
    write_u64(s.size());
    if (!s.empty()) write_bytes(s.data(), s.size());
  }
};

/// Counts bytes only — used for model_size_bytes().
class ByteCountSink final : public SerialSink {
 public:
  void write_bytes(const void*, std::size_t n) override { count_ += n; }
  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

/// Accumulates bytes into a buffer — used for save/load round-trips.
class BufferSink final : public SerialSink {
 public:
  void write_bytes(const void* data, std::size_t n) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + n);
  }
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Read-side archive over a byte buffer.
class BufferSource {
 public:
  explicit BufferSource(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

  void read_bytes(void* out, std::size_t n) {
    // remaining()-based check: `pos_ + n` could wrap for a corrupt length.
    CPR_CHECK_MSG(n <= remaining(), "serialized buffer underrun");
    std::memcpy(out, buffer_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read_bytes(&value, sizeof(T));
    return value;
  }

  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  double read_f64() { return read_pod<double>(); }

  /// Reads an element count that the remaining bytes must be able to back
  /// (each element serializes to >= min_bytes_per_element bytes). Loaders
  /// use this before resizing containers, so a corrupt count in an archive
  /// fails loudly instead of driving a multi-gigabyte allocation.
  std::size_t read_count(std::size_t min_bytes_per_element = 1) {
    const auto n = read_u64();
    CPR_CHECK_MSG(n <= remaining() / min_bytes_per_element,
                  "serialized buffer underrun");
    return static_cast<std::size_t>(n);
  }

  std::vector<double> read_doubles() {
    const auto n = read_u64();
    // Validate against the remaining bytes BEFORE allocating: a corrupt
    // length field must fail loudly, not drive a huge allocation.
    CPR_CHECK_MSG(n <= remaining() / sizeof(double), "serialized buffer underrun");
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n) read_bytes(v.data(), static_cast<std::size_t>(n) * sizeof(double));
    return v;
  }

  std::string read_string() {
    const auto n = read_u64();
    CPR_CHECK_MSG(n <= remaining(), "serialized buffer underrun");
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n) read_bytes(s.data(), static_cast<std::size_t>(n));
    return s;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

  /// Bytes left to read.
  std::size_t remaining() const { return buffer_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t pos_ = 0;
};

}  // namespace cpr
