#include "util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cpr {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    default: return "?";
  }
}

struct EnvConfig {
  int level = static_cast<int>(LogLevel::Warn);
  bool level_from_env = false;
  int format = static_cast<int>(LogFormat::Text);
};

EnvConfig read_env() {
  EnvConfig config;
  if (const char* level = std::getenv("CPR_LOG_LEVEL")) {
    const std::string v = level;
    config.level_from_env = true;
    if (v == "debug") config.level = static_cast<int>(LogLevel::Debug);
    else if (v == "info") config.level = static_cast<int>(LogLevel::Info);
    else if (v == "warn") config.level = static_cast<int>(LogLevel::Warn);
    else if (v == "error") config.level = static_cast<int>(LogLevel::Error);
    else if (v == "off") config.level = static_cast<int>(LogLevel::Off);
    else config.level_from_env = false;  // unrecognized: keep the default
  }
  if (const char* fmt = std::getenv("CPR_LOG")) {
    if (std::string(fmt) == "json") config.format = static_cast<int>(LogFormat::Json);
  }
  return config;
}

const EnvConfig& env_config() {
  static const EnvConfig config = read_env();
  return config;
}

std::atomic<int>& level_cell() {
  static std::atomic<int> level{env_config().level};
  return level;
}

std::atomic<int>& format_cell() {
  static std::atomic<int> format{env_config().format};
  return format;
}

// JSON string-content escaping; duplicated from obs/ on purpose — util/
// sits below obs/ in the layering and must not include it.
void append_json_escaped(std::string* out, const std::string& text) {
  for (unsigned char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

bool needs_quoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

std::string render_line(LogLevel level, const std::string& message,
                        const LogField* fields, std::size_t n_fields) {
  std::string line;
  line.reserve(64 + message.size());
  if (log_format() == LogFormat::Json) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now);
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%lld.%03lld",
                  static_cast<long long>(ms.count() / 1000),
                  static_cast<long long>(ms.count() % 1000));
    line += "{\"ts\":";
    line += ts;
    line += ",\"level\":\"";
    line += level_name(level);
    line += "\",\"msg\":\"";
    append_json_escaped(&line, message);
    line += '"';
    for (std::size_t i = 0; i < n_fields; ++i) {
      line += ",\"";
      append_json_escaped(&line, fields[i].first);
      line += "\":\"";
      append_json_escaped(&line, fields[i].second);
      line += '"';
    }
    line += "}\n";
  } else {
    line += "[cpr ";
    // Historic text format keeps upper-case level tags.
    for (const char* p = level_name(level); *p; ++p) {
      line += static_cast<char>(std::toupper(static_cast<unsigned char>(*p)));
    }
    line += "] ";
    line += message;
    for (std::size_t i = 0; i < n_fields; ++i) {
      line += ' ';
      line += fields[i].first;
      line += '=';
      if (needs_quoting(fields[i].second)) {
        line += '"';
        for (char c : fields[i].second) {
          if (c == '"' || c == '\\') line += '\\';
          line += c;
        }
        line += '"';
      } else {
        line += fields[i].second;
      }
    }
    line += '\n';
  }
  return line;
}

void write_stderr(const std::string& line) {
  // One write(2) per record: atomic with respect to other writers for
  // lines under PIPE_BUF, and never interleaved mid-line by this process
  // because the full line is a single syscall (resuming only if the kernel
  // short-writes, which pipes/files don't do for these sizes).
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr gone; nothing sane to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void emit(LogLevel level, const std::string& message, const LogField* fields,
          std::size_t n_fields) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  write_stderr(render_line(level, message, fields, n_fields));
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_cell().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_cell().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_level_from_env() { return env_config().level_from_env; }

LogFormat log_format() {
  return static_cast<LogFormat>(format_cell().load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) {
  format_cell().store(static_cast<int>(format), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message,
              std::initializer_list<LogField> fields) {
  emit(level, message, fields.begin(), fields.size());
}

void log_line(LogLevel level, const std::string& message,
              const std::vector<LogField>& fields) {
  emit(level, message, fields.data(), fields.size());
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  emit(level, message, nullptr, 0);
}
}  // namespace detail

}  // namespace cpr
