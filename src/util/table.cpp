#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace cpr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CPR_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  CPR_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision);
  if (v != 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-3)) {
    os << std::scientific;
  } else {
    os << std::fixed;
  }
  os << v;
  return os.str();
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote fields containing commas.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace cpr
