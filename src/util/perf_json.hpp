#pragma once
// The BENCH_*.json performance-record format: emitter, parser, and the
// baseline diff that backs the cpr_bench regression gate.
//
// Every bench binary's --json flag writes an array of flat records
//   [{"suite": "...", "case": "...", "seconds": 1.2e-3, "model_bytes": 0}, ...]
// (bench/bench_common delegates here). cpr_bench merges per-suite files into
// one trajectory file and compares it against the committed
// bench/baseline.json: a case slower than baseline by more than the
// threshold is a regression and fails the gate. Parsing is strict — a
// malformed file throws CheckError rather than silently dropping records —
// so the gate can never pass on unreadable data.

#include <cstddef>
#include <string>
#include <vector>

namespace cpr::util {

/// \brief One measured case of a bench suite.
struct PerfRecord {
  std::string suite;            ///< bench binary / suite name
  std::string name;             ///< emitted as "case": app/family/config or kernel id
  double seconds = 0.0;         ///< wall time of the measured unit
  std::size_t model_bytes = 0;  ///< fitted model size (0 where not applicable)
  /// Archive matrix encoding the case ran against ("fp64", "fp32", "fp16",
  /// "int8"). Trailing member with a default so existing aggregate
  /// initializers stay valid; optional on parse for pre-quantization
  /// baseline files.
  std::string quant_mode = "fp64";
};

/// \brief Writes records as a JSON array of {"suite", "case", "seconds",
///        "model_bytes", "quant_mode"} objects.
/// \param path destination file; throws CheckError if it cannot be written.
/// \param records the cases to persist.
void write_perf_json(const std::string& path, const std::vector<PerfRecord>& records);

/// \brief Parses a perf-record array from JSON text.
/// \param text JSON as produced by write_perf_json (whitespace-insensitive;
///             unknown keys are rejected).
/// \return the records in file order.
///
/// Throws CheckError on any syntax error, missing field, or wrong type.
std::vector<PerfRecord> parse_perf_json(const std::string& text);

/// \brief Reads and parses a perf-record file.
/// \param path file to read; throws CheckError if unreadable or malformed.
std::vector<PerfRecord> parse_perf_json_file(const std::string& path);

/// \brief One case's baseline comparison.
struct PerfDelta {
  std::string suite;
  std::string name;
  double seconds = 0.0;           ///< current measurement
  double baseline_seconds = 0.0;  ///< committed baseline (0 when missing)
  double ratio = 1.0;             ///< current / baseline (1 when no baseline)
  bool in_baseline = false;       ///< case present in the baseline file
  bool regression = false;        ///< in baseline and ratio > 1 + threshold
};

/// \brief Result of diffing a merged run against the committed baseline.
struct PerfDiff {
  std::vector<PerfDelta> deltas;      ///< one per current record, input order
  std::vector<PerfRecord> missing;    ///< baseline cases absent from the run
  std::size_t regressions = 0;        ///< deltas with regression == true
};

/// \brief Compares a merged run against baseline records case by case.
/// \param current   the records of this run.
/// \param baseline  the committed reference records.
/// \param threshold allowed slowdown fraction (0.15 = 15%); a case with
///                  current/baseline above 1 + threshold is a regression.
///
/// Cases are keyed by (suite, case name). Current cases without a baseline
/// are reported with in_baseline = false (new cases never gate); baseline
/// cases that did not run land in `missing` so a silently-skipped suite is
/// visible.
PerfDiff diff_perf(const std::vector<PerfRecord>& current,
                   const std::vector<PerfRecord>& baseline, double threshold);

}  // namespace cpr::util
