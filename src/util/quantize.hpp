#pragma once
// Quantized storage for serialized factor matrices (fp32 / fp16 / int8).
//
// Fig 7 treats model size as a first-class axis; the dominant bytes in every
// archive are dense matrices (CP/Tucker factors, MLP weights, SVR/GP/KNN
// support sets). Version-2 CPRARCH1 archives store those matrices as tagged
// blocks in one of four element encodings:
//
//   tag 0  F64  raw IEEE doubles (always lossless)
//   tag 1  F32  IEEE floats, widened exactly on load
//   tag 2  F16  IEEE binary16 bits (round-to-nearest-even), widened on load
//   tag 3  I8   per-column affine int8: cols x {f32 scale, f32 offset}
//               followed by rows*cols int8 codes, v = offset + scale * q
//
// The tag is chosen per block: a block whose values do not survive the
// requested encoding (overflow to inf, finite nonzero flushing to zero,
// non-f32-representable column ranges) falls back to the next wider mode,
// so a lossy request can never corrupt a model — it only saves fewer bytes.
// Scalars, vectors, and tree payloads written through write_doubles stay
// fp64 in every mode: their values (thresholds, leaf times, coefficients)
// have no bounded-relative-error story under affine quantization.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpr {

class SerialSink;
class BufferSource;

/// Element encoding requested for matrix payloads at save time. The numeric
/// values are persisted in archive headers and block tags — never reorder.
enum class QuantMode : std::uint8_t { F64 = 0, F32 = 1, F16 = 2, I8 = 3 };

namespace util {

/// "fp64", "fp32", "fp16", "int8" — the spelling used by --quantize and the
/// perf_json quant_mode field.
const char* quant_mode_name(QuantMode mode);

/// Inverse of quant_mode_name; throws CheckError on anything else.
QuantMode parse_quant_mode(const std::string& name);

/// Round-to-nearest-even conversion to IEEE binary16 bits (software; no
/// hardware f16 requirement).
std::uint16_t f16_bits_from_double(double v);

/// Exact widening of IEEE binary16 bits.
double f16_bits_to_double(std::uint16_t bits);

/// Writes `values` (a row-major rows x cols matrix body, cols needed for the
/// per-column int8 scales) as one tagged block, choosing the widest-needed
/// encoding at or above `requested` per the fallback rules above.
void write_quantized_block(SerialSink& sink, const std::vector<double>& values,
                           std::size_t cols, QuantMode requested);

/// Reads one tagged block of exactly `count` elements written by
/// write_quantized_block. Validates the tag, every length against the
/// remaining buffer before allocating, and the int8 scale/offset entries
/// (finite, scale >= 0); throws CheckError on any violation.
std::vector<double> read_quantized_block(BufferSource& source, std::size_t count,
                                         std::size_t cols);

}  // namespace util
}  // namespace cpr
