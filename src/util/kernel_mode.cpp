#include "util/kernel_mode.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace cpr {

namespace {

KernelMode initial_mode() {
  const char* env = std::getenv("CPR_KERNEL");
  if (env == nullptr || *env == '\0') return KernelMode::Blocked;
  return kernel_mode_from_string(env);
}

KernelMode& mode_slot() {
  // Initialized on first use so a CheckError from a bad CPR_KERNEL value
  // surfaces as a catchable exception in main, not a static-init abort.
  static KernelMode mode = initial_mode();
  return mode;
}

}  // namespace

KernelMode kernel_mode() { return mode_slot(); }

void set_kernel_mode(KernelMode mode) { mode_slot() = mode; }

KernelMode kernel_mode_from_string(const std::string& name) {
  if (name == "serial") return KernelMode::Serial;
  if (name == "blocked") return KernelMode::Blocked;
  CPR_CHECK_MSG(false, "CPR_KERNEL must be 'serial' or 'blocked', got '" << name << "'");
  return KernelMode::Blocked;  // unreachable
}

const char* kernel_mode_name(KernelMode mode) {
  return mode == KernelMode::Serial ? "serial" : "blocked";
}

}  // namespace cpr
