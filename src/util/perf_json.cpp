#include "util/perf_json.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace cpr::util {

namespace {

std::string json_escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');  // control chars (incl. newlines): flatten
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Minimal strict scanner for the array-of-flat-objects subset the emitter
/// produces. Not a general JSON parser: values are strings or plain numbers,
/// which is the whole schema.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    CPR_CHECK_MSG(pos_ < text_.size(), "perf JSON truncated at offset " << pos_);
    return text_[pos_];
  }

  void expect(char c) {
    CPR_CHECK_MSG(peek() == c, "perf JSON: expected '" << c << "' at offset " << pos_
                                                       << ", got '" << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_if(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (true) {
      CPR_CHECK_MSG(pos_ < text_.size(), "perf JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        CPR_CHECK_MSG(pos_ < text_.size(), "perf JSON: dangling escape");
        out.push_back(text_[pos_++]);
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  double number_value() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    CPR_CHECK_MSG(result.ec == std::errc{} && result.ptr == text_.data() + pos_ &&
                      pos_ > start,
                  "perf JSON: malformed number at offset " << start);
    return value;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_perf_json(const std::string& path, const std::vector<PerfRecord>& records) {
  std::ofstream out(path);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    out << "  {\"suite\": \"" << json_escaped(record.suite) << "\", \"case\": \""
        << json_escaped(record.name) << "\", \"seconds\": ";
    out.precision(9);
    out << record.seconds << ", \"model_bytes\": " << record.model_bytes
        << ", \"quant_mode\": \"" << json_escaped(record.quant_mode) << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

std::vector<PerfRecord> parse_perf_json(const std::string& text) {
  Scanner scan(text);
  std::vector<PerfRecord> records;
  scan.expect('[');
  if (!scan.consume_if(']')) {
    while (true) {
      scan.expect('{');
      PerfRecord record;
      bool saw_suite = false, saw_case = false, saw_seconds = false, saw_bytes = false;
      if (!scan.consume_if('}')) {
        while (true) {
          const std::string key = scan.string_value();
          scan.expect(':');
          if (key == "suite") {
            record.suite = scan.string_value();
            saw_suite = true;
          } else if (key == "case") {
            record.name = scan.string_value();
            saw_case = true;
          } else if (key == "seconds") {
            record.seconds = scan.number_value();
            saw_seconds = true;
          } else if (key == "model_bytes") {
            const double bytes = scan.number_value();
            // Guard the double→size_t cast: out-of-range is UB, and the
            // parser's contract is a clean CheckError on any bad value.
            CPR_CHECK_MSG(bytes >= 0.0 && bytes < 9.2e18,
                          "perf JSON: model_bytes out of range");
            record.model_bytes = static_cast<std::size_t>(bytes);
            saw_bytes = true;
          } else if (key == "quant_mode") {
            // Optional (pre-quantization baselines lack it; the default is
            // "fp64"), but when present it must be a known mode.
            record.quant_mode = scan.string_value();
            CPR_CHECK_MSG(record.quant_mode == "fp64" || record.quant_mode == "fp32" ||
                              record.quant_mode == "fp16" || record.quant_mode == "int8",
                          "perf JSON: unknown quant_mode '" << record.quant_mode << "'");
          } else {
            CPR_CHECK_MSG(false, "perf JSON: unknown key '" << key << "'");
          }
          if (!scan.consume_if(',')) break;
        }
        scan.expect('}');
      }
      CPR_CHECK_MSG(saw_suite && saw_case && saw_seconds && saw_bytes,
                    "perf JSON: record missing a required field "
                    "(suite/case/seconds/model_bytes)");
      records.push_back(std::move(record));
      if (!scan.consume_if(',')) break;
    }
    scan.expect(']');
  }
  CPR_CHECK_MSG(scan.at_end(), "perf JSON: trailing content after the record array");
  return records;
}

std::vector<PerfRecord> parse_perf_json_file(const std::string& path) {
  std::ifstream in(path);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CPR_CHECK_MSG(!in.bad(), "read from " << path << " failed");
  return parse_perf_json(buffer.str());
}

PerfDiff diff_perf(const std::vector<PerfRecord>& current,
                   const std::vector<PerfRecord>& baseline, double threshold) {
  std::map<std::pair<std::string, std::string>, const PerfRecord*> reference;
  for (const auto& record : baseline) {
    reference[{record.suite, record.name}] = &record;
  }
  PerfDiff diff;
  for (const auto& record : current) {
    PerfDelta delta;
    delta.suite = record.suite;
    delta.name = record.name;
    delta.seconds = record.seconds;
    const auto it = reference.find({record.suite, record.name});
    if (it != reference.end()) {
      delta.in_baseline = true;
      delta.baseline_seconds = it->second->seconds;
      delta.ratio = delta.baseline_seconds > 0.0
                        ? delta.seconds / delta.baseline_seconds
                        : 1.0;
      delta.regression = delta.ratio > 1.0 + threshold;
      if (delta.regression) ++diff.regressions;
      reference.erase(it);
    }
    diff.deltas.push_back(std::move(delta));
  }
  for (const auto& record : baseline) {
    if (reference.count({record.suite, record.name})) diff.missing.push_back(record);
  }
  return diff;
}

}  // namespace cpr::util
