#include "util/rng.hpp"

#include <cmath>

namespace cpr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  // Boost-style combine on top of splitmix-mixed input.
  return seed ^ (hash64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
  has_cached_normal_ = false;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CPR_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi, got " << lo << " > " << hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(operator()());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = operator()();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::log_uniform(double lo, double hi) {
  CPR_CHECK_MSG(lo > 0.0 && hi >= lo, "log_uniform requires 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::int64_t Rng::log_uniform_int(std::int64_t lo, std::int64_t hi) {
  CPR_CHECK_MSG(lo > 0 && hi >= lo, "log_uniform_int requires 0 < lo <= hi");
  const double draw = log_uniform(static_cast<double>(lo), static_cast<double>(hi));
  auto rounded = static_cast<std::int64_t>(std::llround(draw));
  if (rounded < lo) rounded = lo;
  if (rounded > hi) rounded = hi;
  return rounded;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  CPR_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n << " without replacement");
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher–Yates: only the first k positions are needed.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace cpr
