#pragma once
// Runtime selection of the numerical-kernel implementation.
//
// The completion hot path ships two interchangeable kernel layers: the
// scalar reference kernels of PR 1 (`serial`) and the cache-blocked,
// explicitly vectorized kernels of the SIMD tentpole (`blocked`, the
// default). The `CPR_KERNEL` environment variable overrides the choice at
// process start; tests and benches pin it programmatically. Both layers
// produce results within 1e-12 of each other (the blocked kernels preserve
// the serial per-element accumulation order, see tests/kernels_test.cpp).

#include <string>

namespace cpr {

/// \brief Which implementation the dispatching kernel entry points select.
enum class KernelMode {
  Serial,   ///< scalar reference kernels (the PR-1 implementations)
  Blocked,  ///< cache-blocked, SIMD-vectorized kernels (default)
};

/// \brief The active kernel mode.
///
/// First call reads the `CPR_KERNEL` environment variable (`serial` or
/// `blocked`; unset or empty means `blocked`) and caches the result;
/// an unrecognized value throws CheckError. Later calls return the cached
/// (or programmatically overridden) mode.
KernelMode kernel_mode();

/// \brief Overrides the active mode for the rest of the process.
/// \param mode the implementation every dispatching kernel should use.
///
/// For tests and benches that compare both layers in one process. Not
/// thread-safe against concurrent kernel launches — pin the mode before
/// spawning parallel work.
void set_kernel_mode(KernelMode mode);

/// \brief Parses a `CPR_KERNEL` value; throws CheckError on anything other
///        than "serial" or "blocked".
/// \param name the environment-variable text.
KernelMode kernel_mode_from_string(const std::string& name);

/// \brief Display name ("serial" / "blocked") of a mode.
const char* kernel_mode_name(KernelMode mode);

/// \brief RAII guard restoring the ambient kernel mode on scope exit.
///
/// For tests and benches that pin a mode with set_kernel_mode() and must
/// not leak the override past their scope (including on early return or
/// exception).
struct KernelModeGuard {
  KernelMode saved = kernel_mode();
  KernelModeGuard() = default;
  KernelModeGuard(const KernelModeGuard&) = delete;
  KernelModeGuard& operator=(const KernelModeGuard&) = delete;
  ~KernelModeGuard() { set_kernel_mode(saved); }
};

}  // namespace cpr
