#pragma once
// CPR_SIMD — `#pragma omp simd` where OpenMP is enabled, nothing otherwise
// (without -fopenmp the pragma would only draw an unknown-pragma warning,
// e.g. in the TSan build, which turns OpenMP off). The blocked kernel layer
// puts it on elementwise rank loops over restrict-qualified pointers; it is
// purely a vectorization hint — never a reduction — so results are
// identical with or without it.

#ifdef CPR_HAVE_OPENMP
#define CPR_SIMD _Pragma("omp simd")
#else
#define CPR_SIMD
#endif
