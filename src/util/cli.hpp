#pragma once
// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms. Unknown
// google-benchmark flags (--benchmark_*) are ignored so bench binaries can
// mix our flags with theirs.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cpr {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if the flag appeared (with or without a value).
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Backend of the tools' --threads=<n> flag: caps the OpenMP team size for
/// every subsequent parallel region (predict_batch, completion solves).
/// n <= 0 leaves the environment default (OMP_NUM_THREADS) in place; a
/// no-op when built without OpenMP.
void apply_thread_cap(std::int64_t n);

}  // namespace cpr
