#include "util/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace cpr::util {

namespace {

constexpr double kI8Levels = 254.0;  // symmetric code range [-127, 127]

/// True when every finite nonzero value survives the narrowing `probe`
/// (stays finite and nonzero). Infinities and NaNs are representable in
/// every IEEE width, so they never force a fallback by themselves.
template <typename Probe>
bool narrowing_ok(const std::vector<double>& values, Probe probe) {
  for (const double v : values) {
    if (!std::isfinite(v) || v == 0.0) continue;
    const double narrowed = probe(v);
    if (!std::isfinite(narrowed) || narrowed == 0.0) return false;
  }
  return true;
}

bool f32_ok(const std::vector<double>& values) {
  return narrowing_ok(values,
                      [](double v) { return static_cast<double>(static_cast<float>(v)); });
}

bool f16_ok(const std::vector<double>& values) {
  return narrowing_ok(values, [](double v) {
    return f16_bits_to_double(f16_bits_from_double(v));
  });
}

/// Per-column affine parameters; valid() is false when the column range
/// cannot be represented by finite f32 scale/offset (or values are not
/// finite), which forces the block to fall back to fp32.
struct I8Columns {
  std::vector<float> scale;
  std::vector<float> offset;
  bool valid = false;
};

I8Columns i8_columns(const std::vector<double>& values, std::size_t cols) {
  I8Columns out;
  if (cols == 0) return out;
  const std::size_t rows = values.size() / cols;
  out.scale.resize(cols);
  out.offset.resize(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = 0; i < rows; ++i) {
      const double v = values[i * cols + j];
      if (!std::isfinite(v)) return out;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const float scale = static_cast<float>((hi - lo) / kI8Levels);
    const float offset = static_cast<float>((lo + hi) / 2.0);
    if (!std::isfinite(scale) || !std::isfinite(offset)) return out;
    out.scale[j] = scale;
    out.offset[j] = offset;
  }
  out.valid = true;
  return out;
}

void write_tag(SerialSink& sink, QuantMode mode) {
  sink.write_pod(static_cast<std::uint8_t>(mode));
}

void write_f64_block(SerialSink& sink, const std::vector<double>& values) {
  write_tag(sink, QuantMode::F64);
  if (!values.empty()) sink.write_bytes(values.data(), values.size() * sizeof(double));
}

void write_f32_block(SerialSink& sink, const std::vector<double>& values) {
  write_tag(sink, QuantMode::F32);
  std::vector<float> narrow(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    narrow[i] = static_cast<float>(values[i]);
  }
  if (!narrow.empty()) sink.write_bytes(narrow.data(), narrow.size() * sizeof(float));
}

void write_f16_block(SerialSink& sink, const std::vector<double>& values) {
  write_tag(sink, QuantMode::F16);
  std::vector<std::uint16_t> narrow(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    narrow[i] = f16_bits_from_double(values[i]);
  }
  if (!narrow.empty()) {
    sink.write_bytes(narrow.data(), narrow.size() * sizeof(std::uint16_t));
  }
}

void write_i8_block(SerialSink& sink, const std::vector<double>& values,
                    std::size_t cols, const I8Columns& columns) {
  write_tag(sink, QuantMode::I8);
  for (std::size_t j = 0; j < cols; ++j) {
    sink.write_pod(columns.scale[j]);
    sink.write_pod(columns.offset[j]);
  }
  std::vector<std::int8_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t j = i % cols;
    const double scale = static_cast<double>(columns.scale[j]);
    const double offset = static_cast<double>(columns.offset[j]);
    const long q =
        scale == 0.0 ? 0 : std::lround((values[i] - offset) / scale);
    codes[i] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
  }
  if (!codes.empty()) sink.write_bytes(codes.data(), codes.size());
}

}  // namespace

const char* quant_mode_name(QuantMode mode) {
  switch (mode) {
    case QuantMode::F64: return "fp64";
    case QuantMode::F32: return "fp32";
    case QuantMode::F16: return "fp16";
    case QuantMode::I8: return "int8";
  }
  CPR_CHECK_MSG(false, "invalid quantization mode "
                           << static_cast<unsigned>(mode));
}

QuantMode parse_quant_mode(const std::string& name) {
  if (name == "fp64") return QuantMode::F64;
  if (name == "fp32") return QuantMode::F32;
  if (name == "fp16") return QuantMode::F16;
  if (name == "int8") return QuantMode::I8;
  CPR_CHECK_MSG(false, "unknown quantization mode '"
                           << name << "' (expected fp64, fp32, fp16, or int8)");
}

std::uint16_t f16_bits_from_double(double v) {
  const float f = static_cast<float>(v);
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xffu;
  std::uint32_t mant = bits & 0x7fffffu;
  if (exp == 0xffu) {  // inf / NaN: keep the class, collapse the payload
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow
  if (e <= 0) {
    // Subnormal half (or zero): shift the 24-bit significand into place with
    // round-to-nearest-even on the dropped bits.
    if (e < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - e);
    const std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1u);
    std::uint32_t out = sign | half_mant;
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++out;
    return static_cast<std::uint16_t>(out);
  }
  std::uint32_t out =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  // Round to nearest even; a carry correctly overflows into the exponent
  // (up to infinity at the top of the range).
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(out);
}

double f16_bits_to_double(std::uint16_t bits) {
  const double sign = (bits & 0x8000u) ? -1.0 : 1.0;
  const int exp = (bits >> 10) & 0x1f;
  const int mant = bits & 0x3ff;
  if (exp == 0x1f) {
    if (mant) return std::numeric_limits<double>::quiet_NaN();
    return sign * std::numeric_limits<double>::infinity();
  }
  if (exp == 0) return sign * std::ldexp(static_cast<double>(mant), -24);
  return sign * std::ldexp(static_cast<double>(mant | 0x400), exp - 25);
}

void write_quantized_block(SerialSink& sink, const std::vector<double>& values,
                           std::size_t cols, QuantMode requested) {
  CPR_CHECK_MSG(cols == 0 || values.size() % cols == 0,
                "quantized block size is not a multiple of its column count");
  if (values.empty()) {
    write_f64_block(sink, values);  // nothing to compress; keep the block trivial
    return;
  }
  QuantMode mode = requested;
  if (mode == QuantMode::I8) {
    const I8Columns columns = i8_columns(values, cols);
    if (columns.valid) {
      write_i8_block(sink, values, cols, columns);
      return;
    }
    mode = QuantMode::F32;
  }
  if (mode == QuantMode::F16) {
    if (f16_ok(values)) {
      write_f16_block(sink, values);
      return;
    }
    mode = QuantMode::F32;
  }
  if (mode == QuantMode::F32 && f32_ok(values)) {
    write_f32_block(sink, values);
    return;
  }
  write_f64_block(sink, values);
}

std::vector<double> read_quantized_block(BufferSource& source, std::size_t count,
                                         std::size_t cols) {
  const auto tag = source.read_pod<std::uint8_t>();
  CPR_CHECK_MSG(tag <= static_cast<std::uint8_t>(QuantMode::I8),
                "unknown quantized block tag " << static_cast<unsigned>(tag));
  const auto mode = static_cast<QuantMode>(tag);
  std::vector<double> values;
  switch (mode) {
    case QuantMode::F64: {
      CPR_CHECK_MSG(count <= source.remaining() / sizeof(double),
                    "serialized buffer underrun");
      values.resize(count);
      if (count) source.read_bytes(values.data(), count * sizeof(double));
      return values;
    }
    case QuantMode::F32: {
      CPR_CHECK_MSG(count <= source.remaining() / sizeof(float),
                    "serialized buffer underrun");
      std::vector<float> narrow(count);
      if (count) source.read_bytes(narrow.data(), count * sizeof(float));
      values.assign(narrow.begin(), narrow.end());
      return values;
    }
    case QuantMode::F16: {
      CPR_CHECK_MSG(count <= source.remaining() / sizeof(std::uint16_t),
                    "serialized buffer underrun");
      std::vector<std::uint16_t> narrow(count);
      if (count) {
        source.read_bytes(narrow.data(), count * sizeof(std::uint16_t));
      }
      values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        values[i] = f16_bits_to_double(narrow[i]);
      }
      return values;
    }
    case QuantMode::I8: {
      CPR_CHECK_MSG(count == 0 || cols > 0,
                    "int8 block in a matrix with zero columns");
      CPR_CHECK_MSG(cols <= source.remaining() / (2 * sizeof(float)),
                    "serialized buffer underrun");
      std::vector<float> scale(cols);
      std::vector<float> offset(cols);
      for (std::size_t j = 0; j < cols; ++j) {
        scale[j] = source.read_pod<float>();
        offset[j] = source.read_pod<float>();
        CPR_CHECK_MSG(std::isfinite(scale[j]) && scale[j] >= 0.0f &&
                          std::isfinite(offset[j]),
                      "int8 block has a corrupt scale/offset entry");
      }
      CPR_CHECK_MSG(count <= source.remaining(), "serialized buffer underrun");
      std::vector<std::int8_t> codes(count);
      if (count) source.read_bytes(codes.data(), count);
      values.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j = i % cols;
        values[i] = static_cast<double>(offset[j]) +
                    static_cast<double>(scale[j]) * static_cast<double>(codes[i]);
      }
      return values;
    }
  }
  CPR_CHECK_MSG(false, "unreachable quantized block tag");
}

}  // namespace cpr::util
