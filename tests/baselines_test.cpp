// Tests for the nine baseline model families (Section 6.0.4): each must fit
// canonical functions it is suited for, expose a sane model size, and behave
// deterministically under a fixed seed.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/decision_tree.hpp"
#include "baselines/forest.hpp"
#include "baselines/gaussian_process.hpp"
#include "baselines/global_models.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "baselines/mlp.hpp"
#include "baselines/sparse_grid.hpp"
#include "baselines/svr.hpp"
#include "common/evaluation.hpp"
#include "common/transform.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace cpr::baselines {
namespace {

using common::Dataset;
using grid::Config;

/// y = 1 + 2 x0 - 3 x1 on [0,1]^2 (affine; easy for most families).
Dataset affine_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.uniform();
    data.x(i, 1) = rng.uniform();
    data.y[i] = 1.0 + 2.0 * data.x(i, 0) - 3.0 * data.x(i, 1);
  }
  return data;
}

/// y = sin(2 pi x0) + 0.5 cos(pi x1): smooth and nonlinear.
Dataset wavy_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.uniform();
    data.x(i, 1) = rng.uniform();
    data.y[i] = std::sin(2 * 3.14159265 * data.x(i, 0)) +
                0.5 * std::cos(3.14159265 * data.x(i, 1));
  }
  return data;
}

double rmse_on(const common::Regressor& model, const Dataset& test) {
  const auto predictions = model.predict_all(test.x);
  return std::sqrt(metrics::mse(predictions, test.y));
}

// ---------- MARS ----------

TEST(Mars, FitsAffineExactly) {
  Mars model;
  model.fit(affine_data(500, 1));
  EXPECT_LT(rmse_on(model, affine_data(200, 2)), 1e-6);
}

TEST(Mars, FitsHingeFunction) {
  // y = max(0, x - 0.5): exactly one MARS basis function.
  Rng rng(3);
  Dataset data;
  data.x = linalg::Matrix(600, 1);
  data.y.resize(600);
  for (std::size_t i = 0; i < 600; ++i) {
    data.x(i, 0) = rng.uniform();
    data.y[i] = std::max(0.0, data.x(i, 0) - 0.5);
  }
  MarsOptions options;
  options.knots_per_dim = 32;
  Mars model(options);
  model.fit(data);
  EXPECT_LT(rmse_on(model, data), 0.02);
}

TEST(Mars, ExtrapolatesLinearly) {
  // Hinge bases are linear beyond the data: y = 2x keeps slope outside [0,1].
  Rng rng(4);
  Dataset data;
  data.x = linalg::Matrix(300, 1);
  data.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    data.x(i, 0) = rng.uniform();
    data.y[i] = 2.0 * data.x(i, 0);
  }
  Mars model;
  model.fit(data);
  EXPECT_NEAR(model.predict({2.0}), 4.0, 0.3);
  EXPECT_NEAR(model.predict({-1.0}), -2.0, 0.3);
}

TEST(Mars, InteractionRequiresDegreeTwo) {
  // y = x0 * x1 needs a degree-2 product of hinges.
  Rng rng(5);
  Dataset data;
  data.x = linalg::Matrix(800, 2);
  data.y.resize(800);
  for (std::size_t i = 0; i < 800; ++i) {
    data.x(i, 0) = rng.uniform(-1.0, 1.0);
    data.x(i, 1) = rng.uniform(-1.0, 1.0);
    data.y[i] = data.x(i, 0) * data.x(i, 1);
  }
  MarsOptions deg1, deg2;
  deg1.max_degree = 1;
  deg2.max_degree = 2;
  Mars m1(deg1), m2(deg2);
  m1.fit(data);
  m2.fit(data);
  EXPECT_LT(rmse_on(m2, data), rmse_on(m1, data));
}

TEST(Mars, ModelSizeReflectsTermCount) {
  Mars model;
  model.fit(affine_data(200, 6));
  EXPECT_GT(model.model_size_bytes(), 0u);
  EXPECT_LT(model.model_size_bytes(), 10000u);
}

TEST(Mars, PredictBeforeFitThrows) {
  Mars model;
  EXPECT_THROW(model.predict({0.5}), CheckError);
}

// ---------- Sparse grid regression ----------

TEST(Sgr, FitsAffine) {
  SgrOptions options;
  options.level = 3;
  SparseGridRegressor model(options);
  model.fit(affine_data(800, 7));
  EXPECT_LT(rmse_on(model, affine_data(200, 8)), 0.05);
}

TEST(Sgr, FitsWavyWithEnoughLevels) {
  SgrOptions coarse, fine;
  coarse.level = 2;
  fine.level = 5;
  SparseGridRegressor m_coarse(coarse), m_fine(fine);
  const Dataset train = wavy_data(3000, 9);
  const Dataset test = wavy_data(500, 10);
  m_coarse.fit(train);
  m_fine.fit(train);
  EXPECT_LT(rmse_on(m_fine, test), rmse_on(m_coarse, test));
  EXPECT_LT(rmse_on(m_fine, test), 0.05);
}

TEST(Sgr, GridGrowsWithLevel) {
  SgrOptions l2, l4;
  l2.level = 2;
  l4.level = 4;
  SparseGridRegressor a(l2), b(l4);
  const Dataset train = affine_data(200, 11);
  a.fit(train);
  b.fit(train);
  EXPECT_GT(b.grid_point_count(), a.grid_point_count());
  EXPECT_GT(b.model_size_bytes(), a.model_size_bytes());
}

TEST(Sgr, RefinementAddsPointsAndImprovesFit) {
  SgrOptions base, refined;
  base.level = 2;
  refined.level = 2;
  refined.refinements = 4;
  refined.refine_points = 8;
  SparseGridRegressor a(base), b(refined);
  const Dataset train = wavy_data(2000, 12);
  const Dataset test = wavy_data(400, 13);
  a.fit(train);
  b.fit(train);
  EXPECT_GT(b.grid_point_count(), a.grid_point_count());
  EXPECT_LE(rmse_on(b, test), rmse_on(a, test) * 1.05);
}

TEST(Sgr, HandlesConstantFeature) {
  Rng rng(14);
  Dataset data;
  data.x = linalg::Matrix(100, 2);
  data.y.resize(100);
  for (std::size_t i = 0; i < 100; ++i) {
    data.x(i, 0) = 5.0;  // constant
    data.x(i, 1) = rng.uniform();
    data.y[i] = data.x(i, 1);
  }
  SgrOptions options;
  options.level = 3;
  SparseGridRegressor model(options);
  model.fit(data);
  EXPECT_LT(rmse_on(model, data), 0.1);
}

// ---------- KNN ----------

TEST(Knn, ExactHitReturnsStoredValue) {
  KnnRegressor model(KnnOptions{3, true});
  const Dataset data = affine_data(100, 15);
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict(data.config(7)), data.y[7]);
}

TEST(Knn, OneNeighborIsNearest) {
  Dataset data;
  data.x = linalg::Matrix(3, 1);
  data.x(0, 0) = 0.0;
  data.x(1, 0) = 1.0;
  data.x(2, 0) = 2.0;
  data.y = {10.0, 20.0, 30.0};
  KnnRegressor model(KnnOptions{1, false});
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict({0.9}), 20.0);
}

TEST(Knn, InterpolatesSmoothFunctions) {
  KnnRegressor model(KnnOptions{4, true});
  model.fit(wavy_data(4000, 16));
  EXPECT_LT(rmse_on(model, wavy_data(300, 17)), 0.08);
}

TEST(Knn, ModelSizeScalesWithTrainingSet) {
  KnnRegressor a, b;
  a.fit(affine_data(100, 18));
  b.fit(affine_data(1000, 18));
  EXPECT_NEAR(static_cast<double>(b.model_size_bytes()) /
                  static_cast<double>(a.model_size_bytes()),
              10.0, 1.0);
}

// ---------- Trees ----------

TEST(DecisionTree, FitsStepFunction) {
  Rng rng(19);
  Dataset data;
  data.x = linalg::Matrix(500, 1);
  data.y.resize(500);
  for (std::size_t i = 0; i < 500; ++i) {
    data.x(i, 0) = rng.uniform();
    data.y[i] = data.x(i, 0) < 0.5 ? 1.0 : 5.0;
  }
  DecisionTree tree;
  std::vector<std::size_t> rows(500);
  for (std::size_t i = 0; i < 500; ++i) rows[i] = i;
  TreeOptions options;
  options.max_depth = 3;
  Rng tree_rng(20);
  tree.fit(data, rows, options, tree_rng);
  EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict({0.8}), 5.0, 1e-9);
}

TEST(DecisionTree, DepthZeroIsMean) {
  const Dataset data = affine_data(100, 21);
  DecisionTree tree;
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  TreeOptions options;
  options.max_depth = 0;
  Rng rng(22);
  tree.fit(data, rows, options, rng);
  double mean = 0.0;
  for (const double y : data.y) mean += y;
  mean /= 100.0;
  EXPECT_NEAR(tree.predict({0.5, 0.5}), mean, 1e-12);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RandomForest, ReducesVarianceVsSingleTree) {
  const Dataset train = wavy_data(1500, 23);
  const Dataset test = wavy_data(400, 24);
  ForestOptions single, many;
  single.n_trees = 1;
  many.n_trees = 32;
  single.max_depth = many.max_depth = 8;
  RandomForestRegressor a(single), b(many);
  a.fit(train);
  b.fit(train);
  EXPECT_LT(rmse_on(b, test), rmse_on(a, test) * 1.02);
}

TEST(ExtraTrees, FitsWavyData) {
  ForestOptions options;
  options.n_trees = 32;
  options.max_depth = 10;
  ExtraTreesRegressor model(options);
  model.fit(wavy_data(3000, 25));
  EXPECT_LT(rmse_on(model, wavy_data(400, 26)), 0.1);
}

TEST(ExtraTrees, DeterministicForSeed) {
  ForestOptions options;
  options.n_trees = 4;
  options.seed = 55;
  ExtraTreesRegressor a(options), b(options);
  const Dataset train = wavy_data(300, 27);
  a.fit(train);
  b.fit(train);
  Rng rng(28);
  for (int t = 0; t < 20; ++t) {
    const Config x{rng.uniform(), rng.uniform()};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(GradientBoosting, ImprovesWithMoreTrees) {
  const Dataset train = wavy_data(1500, 29);
  const Dataset test = wavy_data(400, 30);
  BoostingOptions few, many;
  few.n_trees = 4;
  many.n_trees = 64;
  GradientBoostingRegressor a(few), b(many);
  a.fit(train);
  b.fit(train);
  EXPECT_LT(rmse_on(b, test), rmse_on(a, test));
}

TEST(Forests, ModelSizeGrowsWithTreeCount) {
  ForestOptions small, large;
  small.n_trees = 2;
  large.n_trees = 16;
  RandomForestRegressor a(small), b(large);
  const Dataset train = affine_data(400, 31);
  a.fit(train);
  b.fit(train);
  EXPECT_GT(b.model_size_bytes(), 4 * a.model_size_bytes());
}

// ---------- MLP ----------

TEST(Mlp, FitsAffine) {
  MlpOptions options;
  options.hidden_layers = {16};
  options.epochs = 300;
  Mlp model(options);
  model.fit(affine_data(800, 32));
  EXPECT_LT(rmse_on(model, affine_data(200, 33)), 0.08);
}

TEST(Mlp, FitsWavyWithTanh) {
  MlpOptions options;
  options.hidden_layers = {32, 32};
  options.activation = Activation::Tanh;
  options.epochs = 400;
  Mlp model(options);
  model.fit(wavy_data(2000, 34));
  EXPECT_LT(rmse_on(model, wavy_data(300, 35)), 0.12);
}

TEST(Mlp, DeterministicForSeed) {
  MlpOptions options;
  options.hidden_layers = {8};
  options.epochs = 20;
  options.seed = 77;
  Mlp a(options), b(options);
  const Dataset train = affine_data(200, 36);
  a.fit(train);
  b.fit(train);
  EXPECT_DOUBLE_EQ(a.predict({0.3, 0.7}), b.predict({0.3, 0.7}));
}

TEST(Mlp, ModelSizeMatchesArchitecture) {
  MlpOptions options;
  options.hidden_layers = {10};
  Mlp model(options);
  model.fit(affine_data(100, 37));
  // 2*10 + 10 (layer 1) + 10*1 + 1 (layer 2) + 6 scaler doubles = 47 params.
  EXPECT_GE(model.model_size_bytes(), 47 * sizeof(double));
}

// ---------- GP ----------

class GpKernels : public ::testing::TestWithParam<GpKernel> {};

TEST_P(GpKernels, FitsAffineReasonably) {
  GpOptions options;
  options.kernel = GetParam();
  options.noise = 1e-6;
  GaussianProcess model(options);
  const Dataset train = affine_data(400, 38);
  model.fit(train);
  const double tolerance = GetParam() == GpKernel::Constant ? 2.0 : 0.15;
  EXPECT_LT(rmse_on(model, affine_data(100, 39)), tolerance);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GpKernels,
                         ::testing::Values(GpKernel::Rbf, GpKernel::RationalQuadratic,
                                           GpKernel::DotProductWhite, GpKernel::Matern,
                                           GpKernel::Constant));

TEST(Gp, InterpolatesTrainingPointsWithLowNoise) {
  GpOptions options;
  options.kernel = GpKernel::Rbf;
  options.noise = 1e-8;
  GaussianProcess model(options);
  const Dataset train = wavy_data(200, 40);
  model.fit(train);
  double max_error = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    max_error = std::max(max_error, std::abs(model.predict(train.config(i)) - train.y[i]));
  }
  EXPECT_LT(max_error, 1e-3);
}

TEST(Gp, LogMarginalLikelihoodComesFromTheFitFactorization) {
  GpOptions options;
  options.kernel = GpKernel::Rbf;
  GaussianProcess model(options);
  EXPECT_THROW(model.log_marginal_likelihood(), CheckError);  // before fit
  const Dataset train = affine_data(200, 44);
  model.fit(train);
  const double lml = model.log_marginal_likelihood();
  EXPECT_TRUE(std::isfinite(lml));
  // Much larger noise misexplains near-noiseless data: the evidence drops.
  GpOptions noisy = options;
  noisy.noise = 10.0;
  GaussianProcess noisy_model(noisy);
  noisy_model.fit(train);
  EXPECT_LT(noisy_model.log_marginal_likelihood(), lml);
}

TEST(Gp, SubsamplesLargeTrainingSets) {
  GpOptions options;
  options.max_samples = 128;
  GaussianProcess model(options);
  model.fit(affine_data(1000, 41));
  // Model size reflects the capped support set.
  EXPECT_LE(model.model_size_bytes(), 128 * 4 * sizeof(double) + 64);
}

// ---------- SVR ----------

TEST(Svr, FitsAffineWithinTube) {
  SvrOptions options;
  options.kernel = SvrKernel::Rbf;
  options.epsilon = 0.02;
  options.c = 50.0;
  options.max_iters = 800;
  Svr model(options);
  model.fit(affine_data(400, 42));
  EXPECT_LT(rmse_on(model, affine_data(100, 43)), 0.25);
}

TEST(Svr, PolyKernelFitsQuadratic) {
  Rng rng(44);
  Dataset data;
  data.x = linalg::Matrix(300, 1);
  data.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    data.x(i, 0) = rng.uniform(-1.0, 1.0);
    data.y[i] = data.x(i, 0) * data.x(i, 0);
  }
  SvrOptions options;
  options.kernel = SvrKernel::Poly;
  options.poly_degree = 2;
  options.epsilon = 0.01;
  Svr model(options);
  model.fit(data);
  EXPECT_LT(rmse_on(model, data), 0.2);
}

TEST(Svr, SupportVectorsSubsetOfSamples) {
  Svr model;
  const Dataset train = affine_data(300, 45);
  model.fit(train);
  EXPECT_LE(model.support_vector_count(), train.size());
}

// ---------- Global models ----------

TEST(Ols, ExactOnPolynomial) {
  Rng rng(46);
  Dataset data;
  data.x = linalg::Matrix(200, 2);
  data.y.resize(200);
  for (std::size_t i = 0; i < 200; ++i) {
    data.x(i, 0) = rng.uniform(-1.0, 1.0);
    data.x(i, 1) = rng.uniform(-1.0, 1.0);
    data.y[i] = 1.0 + 2.0 * data.x(i, 0) + 0.5 * data.x(i, 1) * data.x(i, 1) -
                data.x(i, 0) * data.x(i, 1);
  }
  OlsOptions options;
  options.degree = 2;
  options.interactions = true;
  OlsRegressor model(options);
  model.fit(data);
  EXPECT_LT(rmse_on(model, data), 1e-8);
}

TEST(Ols, RejectsUnderdeterminedFit) {
  OlsRegressor model;
  Dataset tiny;
  tiny.x = linalg::Matrix(2, 2);
  tiny.y = {1.0, 2.0};
  EXPECT_THROW(model.fit(tiny), CheckError);
}

TEST(Pmnf, RecoversPowerLawTerm) {
  // t = 3 * x^2 log(x): a single PMNF term.
  Rng rng(47);
  Dataset data;
  data.x = linalg::Matrix(300, 1);
  data.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    data.x(i, 0) = rng.log_uniform(2.0, 1000.0);
    data.y[i] = 3.0 * data.x(i, 0) * data.x(i, 0) * std::log(data.x(i, 0));
  }
  PmnfRegressor model;
  model.fit(data);
  EXPECT_LT(metrics::mlogq(model.predict_all(data.x), data.y), 0.05);
}

TEST(Pmnf, TermBudgetRespected) {
  PmnfOptions options;
  options.max_terms = 2;
  PmnfRegressor model(options);
  model.fit(affine_data(300, 48));
  EXPECT_LE(model.terms().size(), 3u);  // constant + 2
}

// ---------- Transform wrapper ----------

TEST(LogSpaceRegressor, MakesPowerLawLinear) {
  // t = c * x^a is affine in log space: wrapped OLS degree-1 fits exactly.
  Rng rng(49);
  Dataset data;
  data.x = linalg::Matrix(300, 1);
  data.y.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    data.x(i, 0) = rng.log_uniform(1.0, 10000.0);
    data.y[i] = 2.5e-7 * std::pow(data.x(i, 0), 1.7);
  }
  OlsOptions ols_options;
  ols_options.degree = 1;
  ols_options.interactions = false;
  common::LogSpaceRegressor model(std::make_unique<OlsRegressor>(ols_options),
                                  common::FeatureTransform::all_log(1));
  model.fit(data);
  EXPECT_LT(common::evaluate_mlogq(model, data), 1e-6);
}

TEST(FeatureTransform, SelectiveLog) {
  common::FeatureTransform transform{{true, false}, false};
  Dataset data;
  data.x = linalg::Matrix(1, 2);
  data.x(0, 0) = std::exp(2.0);
  data.x(0, 1) = 5.0;
  data.y = {1.0};
  const Dataset out = transform.apply(data);
  EXPECT_NEAR(out.x(0, 0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.x(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(out.y[0], 1.0);
}

TEST(FeatureTransform, RejectsNonPositiveForLog) {
  common::FeatureTransform transform = common::FeatureTransform::all_log(1);
  Dataset data;
  data.x = linalg::Matrix(1, 1);
  data.x(0, 0) = -1.0;
  data.y = {1.0};
  EXPECT_THROW(transform.apply(data), CheckError);
}

}  // namespace
}  // namespace cpr::baselines
