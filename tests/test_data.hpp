#pragma once
// Shared synthetic fixtures for the test suites. The separable power law
// t = c * x^1.5 * y^0.8 is rank-1 in log space, so every family fits it
// quickly and accuracy thresholds stay tight; the builders were previously
// copy-pasted across core/extensions/registry/serve tests and are kept
// bit-identical to those originals (same Rng draw sequence).

#include <cmath>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "common/dataset.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "grid/discretization.hpp"
#include "util/rng.hpp"

namespace cpr::testdata {

/// Noise-free separable power-law runtime.
inline double power_law(const grid::Config& x) {
  return 1e-6 * std::pow(x[0], 1.5) * std::pow(x[1], 0.8);
}

/// n log-uniform samples of power_law. noise_cv > 0 adds multiplicative
/// lognormal noise with that coefficient of variation (the core_test
/// convention: sigma = sqrt(log(1 + cv^2)), no Rng draw when cv == 0).
inline common::Dataset sample_power_law(std::size_t n, std::uint64_t seed,
                                        double noise_cv = 0.0) {
  Rng rng(seed);
  common::Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  const double sigma =
      noise_cv > 0.0 ? std::sqrt(std::log(1.0 + noise_cv * noise_cv)) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    data.y[i] = power_law(data.config(i));
    if (sigma > 0.0) data.y[i] *= std::exp(rng.normal(0.0, sigma));
  }
  return data;
}

/// The registry/serve suites' variant: mild lognormal noise of the given
/// log-space sigma applied to every row (one Rng draw per row, always).
inline common::Dataset sample_noisy_power_law(std::size_t n, std::uint64_t seed,
                                              double sigma = 0.05) {
  Rng rng(seed);
  common::Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    data.y[i] = power_law(data.config(i)) * std::exp(rng.normal(0.0, sigma));
  }
  return data;
}

inline std::vector<grid::ParameterSpec> power_law_params() {
  return {grid::ParameterSpec::numerical_log("x", 32.0, 4096.0),
          grid::ParameterSpec::numerical_log("y", 32.0, 4096.0)};
}

inline grid::Discretization power_law_grid(std::size_t cells) {
  return grid::Discretization(power_law_params(), cells);
}

/// A small-but-representative ModelSpec per registry family (fast fits).
inline common::ModelSpec zoo_spec(const std::string& family) {
  common::ModelSpec spec;
  spec.params = power_law_params();
  spec.cells = 6;
  if (family == "nn") spec.hyper = {{"layers", "16x16"}, {"epochs", "40"}};
  if (family == "svm") spec.hyper = {{"iters", "200"}};
  if (family == "sgr") spec.hyper = {{"level", "3"}};
  if (family == "gp") spec.hyper = {{"max-samples", "512"}};
  return spec;
}

inline std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Fresh temp model directory for one test (removed on destruction).
class TempModelDir {
 public:
  explicit TempModelDir(const std::string& tag)
      : dir_(std::filesystem::temp_directory_path() /
             ("cpr_test_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempModelDir() { std::filesystem::remove_all(dir_); }

  std::string save(const std::string& name, const common::Regressor& model) {
    const std::string path = core::model_file_path(dir_.string(), name);
    core::save_model_file(model, path);
    return path;
  }

  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

}  // namespace cpr::testdata
