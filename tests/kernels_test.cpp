// Equivalence suite for the blocked SIMD kernel layer (the CPR_KERNEL
// tentpole): every blocked kernel must match its scalar reference to
// <= 1e-12 at 1, 2, and 8 threads, mirroring the PR-1 thread-invariance
// tests. Where the blocked design guarantees the exact serial accumulation
// order (MTTKRP row buckets, the fused normal-equation tile, the vectorized
// CP evaluation) the tests assert bitwise equality outright.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "completion/als.hpp"
#include "core/cpr_model.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/fused.hpp"
#include "linalg/qr.hpp"
#include "omp_test_utils.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/mttkrp_blocked.hpp"
#include "test_data.hpp"
#include "util/kernel_mode.hpp"
#include "util/rng.hpp"

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

namespace {

using namespace cpr;
using tensor::CpModel;
using tensor::Dims;
using tensor::Index;
using tensor::SparseTensor;

SparseTensor random_sparse(const Dims& dims, double density, std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor t(dims);
  Index idx(dims.size(), 0);
  do {
    if (rng.uniform() < density) t.push_back(idx, rng.normal());
  } while (tensor::next_index(idx, dims));
  return t;
}

TEST(KernelMode, ParsesAndRejects) {
  EXPECT_EQ(kernel_mode_from_string("serial"), KernelMode::Serial);
  EXPECT_EQ(kernel_mode_from_string("blocked"), KernelMode::Blocked);
  EXPECT_THROW(kernel_mode_from_string("simd"), CheckError);
  EXPECT_THROW(kernel_mode_from_string(""), CheckError);
  EXPECT_STREQ(kernel_mode_name(KernelMode::Serial), "serial");
  EXPECT_STREQ(kernel_mode_name(KernelMode::Blocked), "blocked");
}

TEST(KernelMode, DispatchSelectsTheRequestedKernel) {
  // Both dispatch arms must agree with the serial reference on the same
  // input; this pins the CPR_KERNEL plumbing itself.
  const Dims dims{7, 6, 5};
  const auto t = random_sparse(dims, 0.5, 11);
  CpModel m(dims, 4);
  Rng rng(12);
  m.init_random(rng);
  linalg::Matrix reference(dims[0], 4);
  tensor::sparse_mttkrp_serial(t, m, 0, reference);

  KernelModeGuard guard;
  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
    linalg::Matrix out(dims[0], 4);
    tensor::sparse_mttkrp(t, m, 0, out);
    EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12)
        << "mode " << kernel_mode_name(mode);
  }
}

TEST(BlockedMttkrp, RowBlocksPartitionIsStableAndComplete) {
  const Dims dims{5, 4, 3};
  const auto t = random_sparse(dims, 0.7, 21);
  const tensor::RowBlocks blocks(t, 1, 8);
  ASSERT_EQ(blocks.n_rows(), dims[1]);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks.n_rows(); ++i) {
    const std::size_t* entries = blocks.row_entries(i);
    const std::size_t count = blocks.row_entry_count(i);
    total += count;
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_EQ(t.index(entries[k], 1), i) << "entry bucketed into the wrong row";
      // Stability: ascending entry ids == the serial accumulation order.
      if (k > 0) {
        EXPECT_LT(entries[k - 1], entries[k]);
      }
    }
  }
  EXPECT_EQ(total, t.nnz());
  // Blocks tile the row range exactly.
  EXPECT_EQ(blocks.block_first_row(0), 0u);
  EXPECT_EQ(blocks.block_last_row(blocks.n_blocks() - 1), blocks.n_rows());
  for (std::size_t b = 1; b < blocks.n_blocks(); ++b) {
    EXPECT_EQ(blocks.block_last_row(b - 1), blocks.block_first_row(b));
  }
}

TEST(BlockedMttkrp, MatchesSerialAcrossOrdersRanksAndModes) {
  // Orders 2..4 cover the specialized inner loops (2, 3) and the generic
  // Hadamard-tile arm (4); the ranks cover scalar remainders of every SIMD
  // width.
  const std::vector<Dims> shapes{{9, 8}, {7, 6, 5}, {5, 4, 3, 3}};
  for (const auto& dims : shapes) {
    const auto t = random_sparse(dims, 0.5, 31 + dims.size());
    ASSERT_GT(t.nnz(), 0u);
    for (const std::size_t rank : {1u, 3u, 8u, 17u}) {
      CpModel m(dims, rank);
      Rng rng(41 + rank);
      m.init_random(rng);
      for (std::size_t mode = 0; mode < dims.size(); ++mode) {
        linalg::Matrix reference(dims[mode], rank);
        tensor::sparse_mttkrp_serial(t, m, mode, reference);
        linalg::Matrix out(dims[mode], rank);
        tensor::sparse_mttkrp_blocked(t, m, mode, out);
        EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12)
            << "order " << dims.size() << " rank " << rank << " mode " << mode;
      }
    }
  }
}

TEST(BlockedMttkrp, BitwiseEqualToSerialInStorageOrder) {
  // The design guarantee is stronger than 1e-12: stable row bucketing
  // preserves the serial per-element accumulation order exactly.
  const Dims dims{12, 11, 10};
  const auto t = random_sparse(dims, 0.4, 51);
  CpModel m(dims, 8);
  Rng rng(52);
  m.init_random(rng);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    linalg::Matrix reference(dims[mode], 8);
    tensor::sparse_mttkrp_serial(t, m, mode, reference);
    linalg::Matrix out(dims[mode], 8);
    tensor::sparse_mttkrp_blocked(t, m, mode, out);
    EXPECT_EQ(linalg::max_abs_diff(out, reference), 0.0) << "mode " << mode;
  }
}

TEST(BlockedMttkrp, ThreadCountInvariant) {
  const Dims dims{16, 15, 14};
  const auto t = random_sparse(dims, 0.3, 61);
  CpModel m(dims, 6);
  Rng rng(62);
  m.init_random(rng);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    linalg::Matrix reference(dims[mode], 6);
    tensor::sparse_mttkrp_serial(t, m, mode, reference);
#ifdef CPR_HAVE_OPENMP
    const cpr::testing::ThreadCountGuard guard;
    for (const int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      linalg::Matrix out(dims[mode], 6);
      tensor::sparse_mttkrp_blocked(t, m, mode, out);
      EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12)
          << "mode " << mode << ", " << threads << " threads";
    }
#else
    linalg::Matrix out(dims[mode], 6);
    tensor::sparse_mttkrp_blocked(t, m, mode, out);
    EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12);
#endif
  }
}

TEST(BlockedMttkrp, HandlesUnobservedRowsAndSingleRowConcentration) {
  // Rows with no nonzeros must stay zero; all nonzeros in one output row
  // exercises a maximally unbalanced bucket.
  const Dims dims{6, 50, 4};
  SparseTensor t(dims);
  Rng rng(71);
  for (std::size_t k = 0; k < 40; ++k) {
    t.push_back({k % dims[0], 17, k % dims[2]}, rng.normal());
  }
  CpModel m(dims, 5);
  m.init_random(rng);
  linalg::Matrix reference(dims[1], 5);
  tensor::sparse_mttkrp_serial(t, m, 1, reference);
  linalg::Matrix out(dims[1], 5);
  tensor::sparse_mttkrp_blocked(t, m, 1, out);
  EXPECT_EQ(linalg::max_abs_diff(out, reference), 0.0);
  for (std::size_t i = 0; i < dims[1]; ++i) {
    if (i == 17) continue;
    for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(out(i, r), 0.0);
  }
}

TEST(HadamardBlock, BitwiseEqualToHadamardRow) {
  const Dims dims{5, 4, 3, 6};
  const auto t = random_sparse(dims, 0.5, 81);
  ASSERT_GT(t.nnz(), 3u);
  CpModel m(dims, 7);
  Rng rng(82);
  m.init_random(rng);
  std::vector<std::size_t> entries;
  for (std::size_t e = 0; e < t.nnz(); ++e) entries.push_back(e);
  for (std::size_t skip = 0; skip < dims.size(); ++skip) {
    std::vector<double> block(entries.size() * 7);
    tensor::hadamard_block(m, t, entries.data(), entries.size(), skip, block.data());
    std::vector<double> reference(7);
    for (std::size_t b = 0; b < entries.size(); ++b) {
      tensor::hadamard_row(m, t, entries[b], skip, reference.data());
      for (std::size_t r = 0; r < 7; ++r) {
        EXPECT_EQ(block[b * 7 + r], reference[r]) << "entry " << b << " r " << r;
      }
    }
  }
}

TEST(FusedGramRhs, BitwiseEqualToScalarAssembly) {
  Rng rng(91);
  const std::size_t rank = 9;
  const std::size_t n_rows = 23;
  std::vector<double> z(n_rows * rank);
  std::vector<double> w(n_rows);
  for (auto& v : z) v = rng.normal();
  for (auto& v : w) v = rng.normal();

  linalg::Matrix gram(rank, rank, 0.0);
  linalg::Vector rhs(rank, 0.0);
  linalg::fused_gram_rhs(z.data(), w.data(), n_rows, rank, gram, rhs);

  // Scalar reference: the per-entry assembly of the serial ALS row solve.
  linalg::Matrix gram_ref(rank, rank, 0.0);
  linalg::Vector rhs_ref(rank, 0.0);
  for (std::size_t b = 0; b < n_rows; ++b) {
    const double* zb = z.data() + b * rank;
    for (std::size_t r = 0; r < rank; ++r) {
      rhs_ref[r] += w[b] * zb[r];
      for (std::size_t s = r; s < rank; ++s) gram_ref(r, s) += zb[r] * zb[s];
    }
  }
  for (std::size_t r = 0; r < rank; ++r) {
    EXPECT_EQ(rhs[r], rhs_ref[r]);
    for (std::size_t s = r; s < rank; ++s) EXPECT_EQ(gram(r, s), gram_ref(r, s));
  }
}

TEST(FusedGramRhs, AccumulatesAcrossTiles) {
  // Tile-by-tile accumulation must equal one big block (the ALS row solve
  // feeds tiles of 64).
  Rng rng(101);
  const std::size_t rank = 5;
  const std::size_t n_rows = 150;
  std::vector<double> z(n_rows * rank);
  std::vector<double> w(n_rows);
  for (auto& v : z) v = rng.normal();
  for (auto& v : w) v = rng.normal();

  linalg::Matrix whole(rank, rank, 0.0);
  linalg::Vector whole_rhs(rank, 0.0);
  linalg::fused_gram_rhs(z.data(), w.data(), n_rows, rank, whole, whole_rhs);

  linalg::Matrix tiled(rank, rank, 0.0);
  linalg::Vector tiled_rhs(rank, 0.0);
  for (std::size_t first = 0; first < n_rows; first += 64) {
    const std::size_t n = std::min<std::size_t>(64, n_rows - first);
    linalg::fused_gram_rhs(z.data() + first * rank, w.data() + first, n, rank, tiled,
                           tiled_rhs);
  }
  for (std::size_t r = 0; r < rank; ++r) {
    EXPECT_EQ(whole_rhs[r], tiled_rhs[r]);
    for (std::size_t s = r; s < rank; ++s) EXPECT_EQ(whole(r, s), tiled(r, s));
  }
}

TEST(BlockedAls, MatchesSerialModeAcrossThreadCounts) {
  const Dims dims{10, 9, 8};
  const auto t = [&] {
    Rng rng(111);
    SparseTensor raw(dims);
    Index idx(3, 0);
    do {
      if (rng.uniform() < 0.35) raw.push_back(idx, std::exp(rng.normal()));
    } while (tensor::next_index(idx, dims));
    return raw;
  }();
  ASSERT_GT(t.nnz(), 0u);

  completion::CompletionOptions options;
  options.max_sweeps = 5;
  options.tol = 0.0;

  const auto run = [&](KernelMode mode) {
    KernelModeGuard guard;
    set_kernel_mode(mode);
    CpModel model(dims, 4);
    Rng rng(112);
    model.init_ones(rng, 0.3);
    completion::als_complete(t, model, options);
    return model;
  };

  const CpModel reference = run(KernelMode::Serial);
  const CpModel blocked = run(KernelMode::Blocked);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_LT(linalg::max_abs_diff(blocked.factor(j), reference.factor(j)), 1e-12)
        << "factor " << j;
  }

#ifdef CPR_HAVE_OPENMP
  const cpr::testing::ThreadCountGuard guard;
  for (const int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    const CpModel threaded = run(KernelMode::Blocked);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_LT(linalg::max_abs_diff(threaded.factor(j), reference.factor(j)), 1e-12)
          << threads << " threads, factor " << j;
    }
  }
#endif
}

TEST(BlockedPredictBatch, BitwiseEqualToScalarPredictAcrossThreadCounts) {
  const auto data = cpr::testdata::sample_power_law(600, 7);
  core::CprOptions options;
  options.rank = 4;
  options.max_sweeps = 30;
  core::CprModel model(cpr::testdata::power_law_grid(8), options);
  model.fit(data);

  Rng rng(121);
  linalg::Matrix queries(257, 2);  // odd count: exercises a partial tile
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    for (std::size_t j = 0; j < 2; ++j) queries(i, j) = rng.log_uniform(32, 4096);
  }

  std::vector<double> reference(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    grid::Config x(queries.row_ptr(i), queries.row_ptr(i) + 2);
    reference[i] = model.predict(x);
  }

  KernelModeGuard mode_guard;
  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
#ifdef CPR_HAVE_OPENMP
    const cpr::testing::ThreadCountGuard guard;
    for (const int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      const auto batch = model.predict_batch(queries);
      for (std::size_t i = 0; i < queries.rows(); ++i) {
        EXPECT_EQ(batch[i], reference[i])
            << kernel_mode_name(mode) << ", " << threads << " threads, row " << i;
      }
    }
#else
    const auto batch = model.predict_batch(queries);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      EXPECT_EQ(batch[i], reference[i]) << kernel_mode_name(mode) << ", row " << i;
    }
#endif
  }
}

TEST(LinalgDispatch, SolveSpdAndLogdetMatchSerialAcrossModesAndThreads) {
  // The dispatching Cholesky entry points must be bitwise-invisible: blocked
  // mode routes n > 64 through the task-graph tiled factorization, and its
  // results must equal the serial path exactly at any thread count.
  Rng rng(131);
  const std::size_t n = 100;
  linalg::Matrix a(n, n);
  {
    linalg::Matrix g(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.normal();
    }
    linalg::syrk_tn(g, a);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  }
  linalg::Vector b(n);
  for (auto& v : b) v = rng.normal();

  KernelModeGuard mode_guard;
  set_kernel_mode(KernelMode::Serial);
  const auto x_ref = linalg::solve_spd(a, b);
  const auto logdet_ref = linalg::logdet_spd(a);
  ASSERT_TRUE(x_ref.has_value() && logdet_ref.has_value());

  const auto check = [&] {
    const auto x = linalg::solve_spd(a, b);
    const auto logdet = linalg::logdet_spd(a);
    ASSERT_TRUE(x.has_value() && logdet.has_value());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ((*x)[i], (*x_ref)[i]);
    EXPECT_EQ(*logdet, *logdet_ref);
  };

  set_kernel_mode(KernelMode::Blocked);
#ifdef CPR_HAVE_OPENMP
  const cpr::testing::ThreadCountGuard guard;
  for (const int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    check();
  }
#else
  check();
#endif
}

TEST(LinalgDispatch, QrFactorMatchesSerialAcrossModes) {
  Rng rng(132);
  linalg::Matrix a(100, 70);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
  }
  const auto reference = linalg::qr_factor_serial(a);
  KernelModeGuard guard;
  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
    const auto fact = linalg::qr_factor(a);
    EXPECT_EQ(linalg::max_abs_diff(fact.qr, reference.qr), 0.0)
        << kernel_mode_name(mode);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      ASSERT_EQ(fact.tau[k], reference.tau[k]) << kernel_mode_name(mode);
    }
  }
}

TEST(LinalgDispatch, NonSpdFailurePropagatesInBothModes) {
  // A matrix that is indefinite only in its trailing block: the blocked
  // path's failing pivot sits in the last diagonal tile, after the whole
  // task graph has executed.
  Rng rng(133);
  const std::size_t n = 100;
  linalg::Matrix bad(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) bad(i, i) = 1.0;
  bad(n - 1, n - 1) = -1.0;
  linalg::Vector b(n, 1.0);
  KernelModeGuard guard;
  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
    EXPECT_FALSE(linalg::solve_spd(bad, b, 0).has_value()) << kernel_mode_name(mode);
    EXPECT_FALSE(linalg::logdet_spd(bad).has_value()) << kernel_mode_name(mode);
  }
}

TEST(BlockedPredictBatch, PropagatesDomainErrors) {
  const auto data = cpr::testdata::sample_power_law(200, 9);
  core::CprOptions options;
  options.rank = 2;
  options.max_sweeps = 5;
  core::CprModel model(cpr::testdata::power_law_grid(6), options);
  model.fit(data);

  KernelModeGuard guard;
  set_kernel_mode(KernelMode::Blocked);
  // Wrong dimensionality: rejected on the calling thread before dispatch.
  linalg::Matrix wrong_shape(3, 3);
  EXPECT_THROW(model.predict_batch(wrong_shape), CheckError);

  // A NaN coordinate survives the domain clamp and is rejected inside the
  // tiled OpenMP region by interpolate_t — the error must be captured there
  // and rethrown on the calling thread, not terminate the process.
  linalg::Matrix poisoned(80, 2);
  for (std::size_t i = 0; i < poisoned.rows(); ++i) {
    poisoned(i, 0) = 100.0;
    poisoned(i, 1) = 100.0;
  }
  poisoned(41, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model.predict_batch(poisoned), CheckError);
}

}  // namespace
