// Tests for the generalized-loss completion framework, the cell-quadrature
// options, and file-based model persistence.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "apps/benchmark_app.hpp"
#include "common/evaluation.hpp"
#include "completion/amn.hpp"
#include "completion/generalized.hpp"
#include "core/cpr_model.hpp"
#include "core/model_file.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using completion::GeneralizedOptions;
using tensor::CpModel;
using tensor::SparseTensor;

/// Positive rank-2 ground truth with a fraction of entries observed.
struct PositiveProblem {
  CpModel truth;
  SparseTensor observed;
};

PositiveProblem make_positive_problem(std::uint64_t seed, double corrupt_fraction = 0.0) {
  Rng rng(seed);
  CpModel truth({8, 7, 6}, 2);
  truth.init_positive(rng, 1.0, 0.5);
  SparseTensor observed({8, 7, 6});
  const auto total = tensor::element_count({8, 7, 6});
  const auto rows = rng.sample_without_replacement(total, total * 6 / 10);
  for (const auto flat : rows) {
    const auto idx = tensor::delinearize(flat, {8, 7, 6});
    double value = truth.eval(idx);
    if (corrupt_fraction > 0.0 && rng.uniform() < corrupt_fraction) {
      value *= 50.0;  // timer glitch / straggler
    }
    observed.push_back(idx, value);
  }
  return {std::move(truth), std::move(observed)};
}

TEST(Generalized, LogQuadraticMatchesDedicatedAmn) {
  const auto problem = make_positive_problem(1);
  GeneralizedOptions options;
  options.regularization = 1e-8;
  options.max_sweeps = 40;

  CpModel generic(problem.observed.dims(), 2);
  Rng rng(2);
  generic.init_positive(rng, 1.0);
  CpModel dedicated = generic;

  const auto generic_report =
      completion::generalized_complete<completion::LogQuadraticLoss>(problem.observed,
                                                                     generic, options);
  completion::AmnOptions amn_options;
  amn_options.regularization = options.regularization;
  amn_options.max_sweeps = options.max_sweeps;
  const auto amn_report = completion::amn_complete(problem.observed, dedicated, amn_options);

  // Same loss, same schedule: final objectives agree closely.
  EXPECT_NEAR(std::log10(generic_report.final_objective() + 1e-300),
              std::log10(amn_report.final_objective() + 1e-300), 1.0);
  EXPECT_LT(generic_report.final_objective(), 1e-3);
}

TEST(Generalized, LeastSquaresLossRunsUnconstrained) {
  // Least-squares via the generic path needs no positivity/barrier.
  Rng rng(3);
  CpModel truth({6, 6}, 2);
  truth.init_random(rng);
  SparseTensor observed({6, 6});
  for (std::size_t flat = 0; flat < 36; flat += 1) {
    if (flat % 3 == 0) continue;
    const auto idx = tensor::delinearize(flat, {6, 6});
    observed.push_back(idx, truth.eval(idx));
  }
  CpModel model({6, 6}, 2);
  Rng init_rng(4);
  model.init_random(init_rng, 0.5);
  GeneralizedOptions options;
  options.regularization = 1e-10;
  options.max_sweeps = 60;
  const auto report = completion::generalized_complete<completion::LeastSquaresLoss>(
      observed, model, options);
  EXPECT_LT(report.final_objective(), 1e-6);
}

TEST(Generalized, HuberLossDerivativesConsistent) {
  // Finite-difference check in both the quadratic and linear zones.
  for (const double m : {1.2, 5.0}) {  // r = log(m/1): 0.18 (quad), 1.6 (linear)
    const double t = 1.0, h = 1e-6;
    const double numeric_d1 = (completion::HuberLogLoss::value(t, m + h) -
                               completion::HuberLogLoss::value(t, m - h)) /
                              (2 * h);
    EXPECT_NEAR(completion::HuberLogLoss::d1(t, m), numeric_d1, 1e-4);
  }
}

TEST(Generalized, HuberMoreRobustToCorruptionThanLogQuadratic) {
  // 10% of observations multiplied by 50x: Huber's linear tail caps their
  // influence; the squared log loss chases them.
  const auto problem = make_positive_problem(5, /*corrupt_fraction=*/0.10);
  GeneralizedOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 50;

  CpModel huber_model(problem.observed.dims(), 2);
  Rng rng(6);
  huber_model.init_positive(rng, 1.0);
  CpModel quad_model = huber_model;
  completion::generalized_complete<completion::HuberLogLoss>(problem.observed, huber_model,
                                                             options);
  completion::generalized_complete<completion::LogQuadraticLoss>(problem.observed,
                                                                 quad_model, options);

  // Error against the *clean* truth over all cells.
  const auto clean_error = [&](const CpModel& model) {
    double total = 0.0;
    std::size_t count = 0;
    tensor::Index idx(3, 0);
    do {
      const double prediction = model.eval(idx);
      if (prediction > 0.0) {
        const double q = std::log(prediction / problem.truth.eval(idx));
        total += std::abs(q);
      } else {
        total += 40.0;
      }
      ++count;
    } while (tensor::next_index(idx, problem.truth.dims()));
    return total / static_cast<double>(count);
  };
  EXPECT_LT(clean_error(huber_model), clean_error(quad_model));
}

TEST(Quadrature, GeomMeanRemovesJensenBias) {
  // Wide cells + within-cell dispersion: the arithmetic-mean cell value is
  // biased high in log space; the geometric mean is centered.
  Rng rng(7);
  common::Dataset data;
  const std::size_t n = 8192;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(1.0, 1024.0);
    data.x(i, 1) = rng.log_uniform(1.0, 1024.0);
    data.y[i] = 1e-3 * data.x(i, 0) * data.x(i, 1);
  }
  grid::Discretization disc({grid::ParameterSpec::numerical_log("x", 1.0, 1024.0),
                             grid::ParameterSpec::numerical_log("y", 1.0, 1024.0)},
                            4);  // deliberately coarse: big within-cell spread
  core::CprOptions mean_options, geo_options;
  mean_options.rank = geo_options.rank = 2;
  geo_options.quadrature = core::CellQuadrature::GeomMean;
  core::CprModel mean_model(disc, mean_options), geo_model(disc, geo_options);
  mean_model.fit(data);
  geo_model.fit(data);

  Rng test_rng(8);
  std::vector<double> mean_predictions, geo_predictions, truths;
  for (int k = 0; k < 400; ++k) {
    const grid::Config x{test_rng.log_uniform(1.0, 1024.0),
                         test_rng.log_uniform(1.0, 1024.0)};
    mean_predictions.push_back(mean_model.predict(x));
    geo_predictions.push_back(geo_model.predict(x));
    truths.push_back(1e-3 * x[0] * x[1]);
  }
  const double mean_bias =
      std::abs(std::log(metrics::geometric_mean_ratio(mean_predictions, truths)));
  const double geo_bias =
      std::abs(std::log(metrics::geometric_mean_ratio(geo_predictions, truths)));
  EXPECT_LT(geo_bias, mean_bias);
  EXPECT_LT(geo_bias, 0.02);
}

TEST(Quadrature, MedianRobustToStragglers) {
  // 5% of runs take 100x (straggler nodes): the median cell statistic
  // shrugs them off; the mean is dragged upward.
  Rng rng(9);
  common::Dataset data;
  const std::size_t n = 8192;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(1.0, 1024.0);
    data.x(i, 1) = rng.log_uniform(1.0, 1024.0);
    data.y[i] = 1e-3 * data.x(i, 0) * data.x(i, 1);
    if (rng.uniform() < 0.05) data.y[i] *= 100.0;
  }
  grid::Discretization disc({grid::ParameterSpec::numerical_log("x", 1.0, 1024.0),
                             grid::ParameterSpec::numerical_log("y", 1.0, 1024.0)},
                            8);
  core::CprOptions mean_options, median_options;
  mean_options.rank = median_options.rank = 2;
  median_options.quadrature = core::CellQuadrature::Median;
  core::CprModel mean_model(disc, mean_options), median_model(disc, median_options);
  mean_model.fit(data);
  median_model.fit(data);

  Rng test_rng(10);
  std::vector<double> mean_predictions, median_predictions, truths;
  for (int k = 0; k < 400; ++k) {
    const grid::Config x{test_rng.log_uniform(1.0, 1024.0),
                         test_rng.log_uniform(1.0, 1024.0)};
    mean_predictions.push_back(mean_model.predict(x));
    median_predictions.push_back(median_model.predict(x));
    truths.push_back(1e-3 * x[0] * x[1]);
  }
  EXPECT_LT(metrics::mlogq(median_predictions, truths),
            metrics::mlogq(mean_predictions, truths));
}

TEST(ModelFile, SaveLoadRoundTrip) {
  const auto mm = apps::make_matmul();
  core::CprOptions options;
  options.rank = 4;
  core::CprModel model(grid::Discretization(mm->parameters(), 8), options);
  model.fit(mm->generate_dataset(2048, 11));
  const auto path =
      (std::filesystem::temp_directory_path() / "cpr_model_file_test.cprm").string();
  core::save_model_file(model, path);
  const auto loaded = core::load_model_file(path);
  EXPECT_EQ(loaded->type_tag(), "cpr");
  EXPECT_EQ(loaded->input_dims(), model.input_dims());
  const auto probe = mm->generate_dataset(64, 12);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->predict(probe.config(i)), model.predict(probe.config(i)));
  }
  std::filesystem::remove(path);
}

TEST(ModelFile, RejectsGarbageFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto bad = (dir / "cpr_model_bad.cprm").string();
  {
    std::ofstream out(bad, std::ios::binary);
    out << "this is not a model";
  }
  EXPECT_THROW(core::load_model_file(bad), CheckError);
  EXPECT_THROW(core::load_model_file((dir / "nonexistent.cprm").string()), CheckError);
  std::filesystem::remove(bad);
}

TEST(ModelFile, DetectsTruncation) {
  const auto mm = apps::make_matmul();
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(grid::Discretization(mm->parameters(), 4), options);
  model.fit(mm->generate_dataset(256, 13));
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "cpr_model_trunc.cprm").string();
  core::save_model_file(model, path);
  // Truncate the payload.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 16);
  EXPECT_THROW(core::load_model_file(path), CheckError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpr
