// Tests for the observability layer (src/obs): histogram bucket placement
// and exact counts, merge associativity/determinism across thread splits,
// the Prometheus exposition and its structural validator, span tracing with
// sampling and Chrome-trace export, and the training profiler.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace cpr::obs {
namespace {

// ------------------------------------------------------------- histogram

TEST(Histogram, BoundariesAreSharedLogScale) {
  const auto& bounds = Histogram::boundaries();
  ASSERT_EQ(bounds.size(), 108u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
    // Four buckets per octave: the ratio is exactly 2^(1/4).
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::exp2(0.25), 1e-12);
  }
  // Coverage reaches the "slow request" regime before the overflow bucket.
  EXPECT_GT(bounds.back(), 100.0);
}

TEST(Histogram, RecordPlacesSamplesInExactBuckets) {
  const auto& bounds = Histogram::boundaries();
  Histogram h;
  h.record(0.0);                // below the first bound: bucket 0
  h.record(1e-9);               // still bucket 0
  h.record(bounds[0]);          // exactly on a bound: that bucket (le contract)
  h.record(bounds[5]);          // bucket 5
  h.record(bounds[5] * 1.001);  // just past it: bucket 6
  h.record(bounds.back() * 2);  // beyond the last bound: overflow
  h.record(-1.0);               // negative clamps into bucket 0
  h.record(std::nan(""));       // NaN clamps into bucket 0

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), bounds.size() + 1);
  EXPECT_EQ(snap.buckets[0], 5u);  // 0.0, 1e-9, bounds[0] (le), -1, NaN
  EXPECT_EQ(snap.buckets[5], 1u);
  EXPECT_EQ(snap.buckets[6], 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  EXPECT_EQ(snap.count(), 8u);
}

TEST(Histogram, SumIsExactIntegerNanoseconds) {
  Histogram h;
  h.record(0.001);  // 1 ms
  h.record(0.002);
  h.record(std::nan(""));  // contributes 0 ns
  EXPECT_EQ(h.snapshot().sum_ns, 3'000'000u);
  EXPECT_DOUBLE_EQ(h.snapshot().sum_seconds(), 0.003);
}

TEST(Histogram, CountsAreExactUnderConcurrentRecording) {
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) h.record(1e-4);
    });
  }
  for (auto& thread : threads) thread.join();
  // Exact counts, not a reservoir: nothing is lost or double-counted.
  EXPECT_EQ(h.snapshot().count(), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().sum_ns, kThreads * kPerThread * 100'000u);
}

/// Records `values` split across `ways` histograms (simulating per-thread
/// or per-process shards) and returns the merged snapshot.
HistogramSnapshot record_split(const std::vector<double>& values, std::size_t ways) {
  std::vector<Histogram> shards(ways);
  for (std::size_t i = 0; i < values.size(); ++i) {
    shards[i % ways].record(values[i]);
  }
  HistogramSnapshot merged = shards[0].snapshot();
  for (std::size_t s = 1; s < ways; ++s) merged.merge(shards[s].snapshot());
  return merged;
}

TEST(Histogram, MergeIsAssociativeAndSplitInvariant) {
  std::vector<double> values;
  for (std::size_t i = 0; i < 1000; ++i) {
    values.push_back(1e-6 * static_cast<double>(1 + i * 37 % 5000));
  }
  const HistogramSnapshot one = record_split(values, 1);
  const HistogramSnapshot two = record_split(values, 2);
  const HistogramSnapshot eight = record_split(values, 8);

  // The same workload through any shard split merges to bitwise-identical
  // state — the property that makes percentiles reproducible across runs.
  EXPECT_EQ(one.buckets, two.buckets);
  EXPECT_EQ(one.buckets, eight.buckets);
  EXPECT_EQ(one.sum_ns, two.sum_ns);
  EXPECT_EQ(one.sum_ns, eight.sum_ns);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(one.percentile(q), two.percentile(q));
    EXPECT_EQ(one.percentile(q), eight.percentile(q));
  }
}

TEST(Histogram, PercentileIsNearestRankOverBuckets) {
  const auto& bounds = Histogram::boundaries();
  HistogramSnapshot empty;
  empty.buckets.assign(bounds.size() + 1, 0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  Histogram h;
  for (int i = 0; i < 9; ++i) h.record(1e-5);  // bucket with bound ~1e-5
  h.record(1.0);                               // one slow outlier
  // p50 over 10 samples: rank 5 is in the 1e-5 bucket.
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 1e-5 * 0.999);
  EXPECT_LT(p50, 2e-5);
  // p99/p100: rank 10 is the outlier's bucket.
  EXPECT_GE(h.percentile(0.99), 1.0);
  // Overflow samples report the last finite boundary, never infinity.
  Histogram overflow;
  overflow.record(1e9);
  EXPECT_EQ(overflow.percentile(0.5), bounds.back());
}

// --------------------------------------------------------- counter/gauge

TEST(Counter, SumsShardsExactlyUnderConcurrency) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, TracksLevelUpAndDown) {
  Gauge gauge;
  gauge.add(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
}

// --------------------------------------------------------------- registry

TEST(Registry, RendersValidPrometheusExposition) {
  Registry registry;
  registry.counter("cpr_test_events_total", "events seen").inc(3);
  registry.gauge("cpr_test_level", "current level").set(-2);
  Histogram& h = registry.histogram("cpr_test_latency_seconds", "latency");
  h.record(0.001);
  h.record(0.004);
  registry.callback("cpr_test_pulled", "render-time value",
                    Registry::CallbackKind::Counter, [] { return 42.0; });

  const std::string text = registry.render();
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, &error)) << error;

  EXPECT_NE(text.find("# TYPE cpr_test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("cpr_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cpr_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("cpr_test_level -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cpr_test_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("cpr_test_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cpr_test_latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("cpr_test_latency_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("cpr_test_pulled 42"), std::string::npos);
}

TEST(Registry, RegistrationIsIdempotentAndKindChecked) {
  Registry registry;
  Counter& a = registry.counter("cpr_dup_total", "first");
  Counter& b = registry.counter("cpr_dup_total", "second wins nothing");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(registry.gauge("cpr_dup_total", "wrong kind"), CheckError);
  EXPECT_THROW(registry.histogram("cpr_dup_total", "wrong kind"), CheckError);
}

TEST(Registry, ValidatorRejectsStructuralViolations) {
  std::string error;
  // Sample with no preceding TYPE comment.
  EXPECT_FALSE(validate_prometheus_text("cpr_orphan_total 1\n", &error));
  // Histogram whose cumulative bucket counts decrease.
  const std::string shrinking =
      "# TYPE cpr_h histogram\n"
      "cpr_h_bucket{le=\"0.1\"} 5\n"
      "cpr_h_bucket{le=\"0.2\"} 3\n"
      "cpr_h_bucket{le=\"+Inf\"} 5\n"
      "cpr_h_sum 1\n"
      "cpr_h_count 5\n";
  EXPECT_FALSE(validate_prometheus_text(shrinking, &error));
  // Histogram missing the +Inf bucket.
  const std::string no_inf =
      "# TYPE cpr_h histogram\n"
      "cpr_h_bucket{le=\"0.1\"} 5\n"
      "cpr_h_sum 1\n"
      "cpr_h_count 5\n";
  EXPECT_FALSE(validate_prometheus_text(no_inf, &error));
  // _count disagreeing with the +Inf bucket.
  const std::string bad_count =
      "# TYPE cpr_h histogram\n"
      "cpr_h_bucket{le=\"0.1\"} 5\n"
      "cpr_h_bucket{le=\"+Inf\"} 5\n"
      "cpr_h_sum 1\n"
      "cpr_h_count 7\n";
  EXPECT_FALSE(validate_prometheus_text(bad_count, &error));
}

// ------------------------------------------------------------------ trace

TEST(Trace, NullHandleIsANoOp) {
  TraceHandle null;
  SpanTimer timer(null, "anything");
  timer.arg("key", "value");  // must not crash
}

TEST(Trace, SamplerHonorsEveryN) {
  TraceCollector off;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(off.maybe_start(), nullptr);

  TraceCollector all;
  all.set_sample_every(1);
  for (int i = 0; i < 10; ++i) EXPECT_NE(all.maybe_start(), nullptr);

  TraceCollector third;
  third.set_sample_every(3);
  std::size_t sampled = 0;
  for (int i = 0; i < 9; ++i) sampled += third.maybe_start() != nullptr;
  EXPECT_EQ(sampled, 3u);
}

TEST(Trace, RenderedJsonValidatesAndCarriesSpans) {
  TraceCollector collector;
  collector.set_sample_every(1);
  for (int i = 0; i < 3; ++i) {
    TraceHandle trace = collector.maybe_start();
    ASSERT_NE(trace, nullptr);
    {
      SpanTimer span(trace, "handle");
      span.arg("verb", "PREDICT");
      SpanTimer inner(trace, "predict");
    }
    collector.finish(trace);
  }
  EXPECT_EQ(collector.collected(), 3u);

  const std::string json = collector.render_chrome_json();
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"handle\""), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"PREDICT\""), std::string::npos);
}

TEST(Trace, SerializerIsTotalOverHostileStrings) {
  // Span names/args containing quotes, backslashes, control bytes, and
  // non-ASCII bytes must still render to parseable, valid trace JSON.
  std::vector<ChromeEvent> events;
  const std::string hostile = "q\"b\\s\nnl\ttab\x01\x1f\xff";
  ChromeEvent event;
  event.name = hostile;
  event.tid = 7;
  event.start_ns = 1000;
  event.end_ns = 2500;
  event.args.emplace_back(hostile, hostile);
  events.push_back(event);
  const std::string json = render_chrome_events(std::move(events));
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error << "\n" << json;
}

TEST(Trace, JsonEscapeHandlesEveryByteClass) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(validate_chrome_trace("not json at all", &error));
  EXPECT_FALSE(validate_chrome_trace("{}", &error));  // no traceEvents
  EXPECT_FALSE(validate_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1,\"dur\":1}]}", &error));  // no name
  // Timestamps must be monotone within one tid lane.
  EXPECT_FALSE(validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"tid\":1,\"ts\":100,\"dur\":1},"
      "{\"name\":\"b\",\"ph\":\"X\",\"tid\":1,\"ts\":50,\"dur\":1}]}",
      &error));
  // But separate lanes are independent.
  EXPECT_TRUE(validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"tid\":1,\"ts\":100,\"dur\":1},"
      "{\"name\":\"b\",\"ph\":\"X\",\"tid\":2,\"ts\":50,\"dur\":1}]}",
      &error))
      << error;
}

// --------------------------------------------------------------- profiler

TEST(Profiler, AccumulatesPhasesAndResets) {
  Profiler& profiler = Profiler::instance();
  profiler.reset();
  profiler.set_enabled(true, /*capture=*/true);

  const std::size_t phase = profiler.register_phase("obs_test_phase");
  EXPECT_EQ(profiler.register_phase("obs_test_phase"), phase);  // idempotent
  profiler.record(phase, 1000, 3000);
  profiler.record(phase, 5000, 6000);

  bool found = false;
  for (const auto& stat : profiler.stats()) {
    if (stat.name != "obs_test_phase") continue;
    found = true;
    EXPECT_EQ(stat.calls, 2u);
    EXPECT_EQ(stat.total_ns, 3000u);
  }
  EXPECT_TRUE(found);

  const std::string json = profiler.render_chrome_json();
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("obs_test_phase"), std::string::npos);

  profiler.set_enabled(false);
  profiler.reset();
  for (const auto& stat : profiler.stats()) EXPECT_NE(stat.name, "obs_test_phase");
}

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler& profiler = Profiler::instance();
  profiler.set_enabled(false);
  profiler.reset();
  for (int i = 0; i < 100; ++i) {
    CPR_PROFILE_SCOPE("obs_test_disabled");
  }
  for (const auto& stat : profiler.stats()) {
    EXPECT_NE(stat.name, "obs_test_disabled");
  }
}

}  // namespace
}  // namespace cpr::obs
