// --help audit for the command-line tools: every tool must exit 0 on
// --help and print one consistent usage block that names every flag it
// parses, with defaults. The per-tool flag lists below are the authoritative
// inventory (grep `args.get_*` / `args.has` in tools/*.cpp when adding a
// flag) — a flag missing from --help fails here, so help drift is caught in
// CI rather than by a confused operator.
//
// The test binary receives the tools directory via the CPR_TOOLS_DIR
// compile definition (tests/CMakeLists.txt points it at the build tree).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct RunResult {
  std::string output;  ///< combined stdout + stderr
  int status = -1;     ///< process exit status (-1 if it did not exit cleanly)
};

RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int raw = ::pclose(pipe);
  if (raw >= 0 && WIFEXITED(raw)) result.status = WEXITSTATUS(raw);
  return result;
}

std::string tool_path(const std::string& name) {
  return std::string(CPR_TOOLS_DIR) + "/" + name;
}

struct ToolSpec {
  const char* name;
  std::vector<const char*> flags;  ///< every flag the tool parses (minus --help)
  bool requires_arguments;         ///< no-arg invocation must fail with usage
};

const std::vector<ToolSpec> kTools = {
    {"cpr_train",
     {"--data", "--out", "--model", "--cells", "--rank", "--lambda", "--log-dims",
      "--categorical", "--hyper", "--tune", "--tune-threads", "--seed",
      "--profile", "--trace-out"},
     true},
    {"cpr_tune",
     {"--data", "--model", "--out", "--trials", "--folds", "--rungs", "--eta",
      "--threads", "--seed", "--cells", "--log-dims", "--categorical", "--hyper",
      "--space", "--json", "--csv", "--profile", "--trace-out"},
     true},
    {"cpr_predict", {"--model", "--configs", "--out", "--threads"}, true},
    {"cpr_serve",
     {"--models", "--socket", "--tcp", "--io-threads", "--max-inflight",
      "--max-backlog", "--threads", "--workers", "--max-batch",
      "--max-wait-us", "--cache", "--cache-shards", "--refit-after",
      "--observe-buffer", "--trace-sample", "--trace-out", "--metrics-out"},
     true},
    {"cpr_obscheck", {"--metrics", "--trace"}, true},
    // cpr_bench without arguments would launch the full bench run, so only
    // its --help surface is audited.
    {"cpr_bench",
     {"--bench-dir", "--suites", "--quick", "--list", "--out", "--baseline",
      "--threshold", "--no-gate", "--update-baseline"},
     false},
};

TEST(ToolsHelp, HelpExitsZeroAndListsEveryFlag) {
  for (const auto& tool : kTools) {
    const auto result = run_command(tool_path(tool.name) + " --help");
    EXPECT_EQ(result.status, 0) << tool.name << " --help must exit 0; output:\n"
                                << result.output;
    EXPECT_NE(result.output.find("usage: " + std::string(tool.name)),
              std::string::npos)
        << tool.name << " --help must open with 'usage: " << tool.name << "'";
    EXPECT_NE(result.output.find("default"), std::string::npos)
        << tool.name << " --help must state defaults";
    for (const char* flag : tool.flags) {
      EXPECT_NE(result.output.find(flag), std::string::npos)
          << tool.name << " --help does not mention " << flag;
    }
  }
}

TEST(ToolsHelp, MissingRequiredArgumentsFailWithUsage) {
  for (const auto& tool : kTools) {
    if (!tool.requires_arguments) continue;
    const auto result = run_command(tool_path(tool.name));
    EXPECT_NE(result.status, 0)
        << tool.name << " without required flags must exit nonzero";
    EXPECT_NE(result.output.find("usage:"), std::string::npos)
        << tool.name << " must print usage when required flags are missing";
  }
}

}  // namespace
