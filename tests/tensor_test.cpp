// Tests for the tensor substrate: multi-index utilities, dense/sparse
// tensors, the CP model, MTTKRP, and fully-observed dense CP-ALS.

#include <gtest/gtest.h>

#include <cmath>

#ifdef CPR_HAVE_OPENMP
#include <omp.h>

#include "omp_test_utils.hpp"
#endif

#include "linalg/blas.hpp"
#include "tensor/cp_als_dense.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/multi_index.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/rng.hpp"

namespace cpr::tensor {
namespace {

TEST(MultiIndex, ElementCount) {
  EXPECT_EQ(element_count({3, 4, 5}), 60u);
  EXPECT_EQ(element_count({7}), 7u);
  EXPECT_EQ(element_count({}), 1u);
}

TEST(MultiIndex, RowMajorStrides) {
  EXPECT_EQ(row_major_strides({3, 4, 5}), (std::vector<std::size_t>{20, 5, 1}));
}

TEST(MultiIndex, LinearizeDelinearizeRoundTrip) {
  const Dims dims{3, 4, 5};
  for (std::size_t flat = 0; flat < element_count(dims); ++flat) {
    EXPECT_EQ(linearize(delinearize(flat, dims), dims), flat);
  }
}

TEST(MultiIndex, NextIndexVisitsAllInOrder) {
  const Dims dims{2, 3};
  Index idx(2, 0);
  std::size_t flat = 0;
  do {
    EXPECT_EQ(linearize(idx, dims), flat++);
  } while (next_index(idx, dims));
  EXPECT_EQ(flat, 6u);
}

TEST(MultiIndex, InBounds) {
  EXPECT_TRUE(in_bounds({1, 2}, {2, 3}));
  EXPECT_FALSE(in_bounds({2, 2}, {2, 3}));
  EXPECT_FALSE(in_bounds({0}, {2, 3}));  // arity mismatch
}

TEST(DenseTensor, ElementAccessAndNorm) {
  DenseTensor t({2, 2});
  t.at({0, 0}) = 3.0;
  t.at({1, 1}) = 4.0;
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(t[0], 3.0);
}

TEST(DenseTensor, FrobeniusDistance) {
  DenseTensor a({2, 2}), b({2, 2});
  a.at({0, 1}) = 2.0;
  EXPECT_DOUBLE_EQ(a.frobenius_distance(b), 2.0);
}

TEST(SparseTensor, PushAndQuery) {
  SparseTensor t({3, 4});
  t.push_back({1, 2}, 5.0);
  t.push_back({2, 0}, -1.0);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.index(0, 1), 2u);
  EXPECT_DOUBLE_EQ(t.value(1), -1.0);
  EXPECT_EQ(t.entry_index(0), (Index{1, 2}));
  EXPECT_DOUBLE_EQ(t.density(), 2.0 / 12.0);
}

TEST(SparseTensor, OutOfBoundsEntryThrows) {
  SparseTensor t({2, 2});
  EXPECT_THROW(t.push_back({2, 0}, 1.0), CheckError);
}

TEST(SparseTensor, AccumulatorAveragesDuplicates) {
  SparseTensor::Accumulator acc({4, 4});
  acc.add({1, 1}, 2.0);
  acc.add({1, 1}, 4.0);
  acc.add({0, 3}, 7.0);
  EXPECT_EQ(acc.distinct_cells(), 2u);
  const SparseTensor t = acc.build();
  EXPECT_EQ(t.nnz(), 2u);
  // Entries are in ascending flat order: (0,3) before (1,1).
  EXPECT_EQ(t.entry_index(0), (Index{0, 3}));
  EXPECT_DOUBLE_EQ(t.value(0), 7.0);
  EXPECT_DOUBLE_EQ(t.value(1), 3.0);
}

TEST(SparseTensor, ToDenseScatter) {
  SparseTensor t({2, 2});
  t.push_back({0, 1}, 9.0);
  const DenseTensor dense = t.to_dense(-1.0);
  EXPECT_DOUBLE_EQ(dense.at({0, 1}), 9.0);
  EXPECT_DOUBLE_EQ(dense.at({1, 0}), -1.0);
}

TEST(SparseTensor, TransformValues) {
  SparseTensor t({2});
  t.push_back({0}, std::exp(1.0));
  t.transform_values([](double v) { return std::log(v); });
  EXPECT_NEAR(t.value(0), 1.0, 1e-15);
}

TEST(ModeSlices, GroupsEntriesByModeIndex) {
  SparseTensor t({2, 3});
  t.push_back({0, 0}, 1.0);
  t.push_back({0, 2}, 2.0);
  t.push_back({1, 2}, 3.0);
  const ModeSlices slices(t);
  EXPECT_EQ(slices.entries(0, 0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(slices.entries(0, 1), (std::vector<std::size_t>{2}));
  EXPECT_EQ(slices.entries(1, 2), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(slices.entries(1, 1).empty());
}

TEST(CpModel, EvalMatchesManualSum) {
  CpModel m({2, 2}, 2);
  // U = [[1,2],[3,4]], V = [[5,6],[7,8]]
  m.factor(0) = linalg::Matrix{{1, 2}, {3, 4}};
  m.factor(1) = linalg::Matrix{{5, 6}, {7, 8}};
  EXPECT_DOUBLE_EQ(m.eval({0, 0}), 1 * 5 + 2 * 6);
  EXPECT_DOUBLE_EQ(m.eval({1, 1}), 3 * 7 + 4 * 8);
}

TEST(CpModel, ReconstructMatchesEval) {
  Rng rng(1);
  CpModel m({3, 4, 2}, 3);
  m.init_random(rng);
  const DenseTensor t = m.reconstruct();
  Index idx(3, 0);
  do {
    EXPECT_NEAR(t.at(idx), m.eval(idx), 1e-12);
  } while (next_index(idx, m.dims()));
}

TEST(CpModel, FrobeniusNormMatchesDense) {
  Rng rng(2);
  CpModel m({4, 5, 3}, 4);
  m.init_random(rng);
  EXPECT_NEAR(m.frobenius_norm(), m.reconstruct().frobenius_norm(), 1e-9);
}

TEST(CpModel, PositiveInitIsPositiveAndScaled) {
  Rng rng(3);
  CpModel m({4, 4, 4}, 3);
  m.init_positive(rng, 2.0, 0.05);
  EXPECT_TRUE(m.all_factors_positive());
  // eval at any index should be near 2^3 = 8 (magnitude^order).
  const double v = m.eval({0, 0, 0});
  EXPECT_GT(v, 2.0);
  EXPECT_LT(v, 32.0);
}

TEST(CpModel, RandomInitNotAllPositive) {
  Rng rng(4);
  CpModel m({8, 8}, 4);
  m.init_random(rng);
  EXPECT_FALSE(m.all_factors_positive());
}

TEST(CpModel, RegularizationTermIsSumOfSquares) {
  CpModel m({2, 2}, 1);
  m.factor(0) = linalg::Matrix{{1}, {2}};
  m.factor(1) = linalg::Matrix{{3}, {4}};
  EXPECT_DOUBLE_EQ(m.regularization_term(), 1 + 4 + 9 + 16);
}

TEST(CpModel, SerializationRoundTrip) {
  Rng rng(5);
  CpModel m({3, 5, 2}, 4);
  m.init_random(rng);
  BufferSink sink;
  m.serialize(sink);
  EXPECT_EQ(m.parameter_bytes(), sink.buffer().size());
  BufferSource source(sink.buffer());
  const CpModel restored = CpModel::deserialize(source);
  EXPECT_EQ(restored.dims(), m.dims());
  EXPECT_EQ(restored.rank(), m.rank());
  Index idx(3, 0);
  do {
    EXPECT_DOUBLE_EQ(restored.eval(idx), m.eval(idx));
  } while (next_index(idx, m.dims()));
}

TEST(CpModel, SizeLinearInOrderAndRank) {
  // The memory-efficiency property of Section 7.1.3: doubling rank roughly
  // doubles parameter bytes; adding a mode adds one factor.
  const CpModel a({8, 8, 8}, 4), b({8, 8, 8}, 8), c({8, 8, 8, 8}, 4);
  // Ratios are near-exact up to fixed serialization headers.
  const double ratio = static_cast<double>(b.parameter_bytes()) /
                       static_cast<double>(a.parameter_bytes());
  EXPECT_NEAR(ratio, 2.0, 0.2);
  const double mode_ratio = static_cast<double>(c.parameter_bytes()) /
                            static_cast<double>(a.parameter_bytes());
  EXPECT_NEAR(mode_ratio, 4.0 / 3.0, 0.1);
}

TEST(KhatriRao, MatchesDefinition) {
  linalg::Matrix a{{1, 2}, {3, 4}};
  linalg::Matrix b{{5, 6}, {7, 8}, {9, 10}};
  const linalg::Matrix kr = khatri_rao(a, b);
  ASSERT_EQ(kr.rows(), 6u);
  EXPECT_DOUBLE_EQ(kr(0, 0), 1 * 5);
  EXPECT_DOUBLE_EQ(kr(2, 1), 2 * 10);
  EXPECT_DOUBLE_EQ(kr(5, 0), 3 * 9);
}

TEST(Mttkrp, SparseMatchesDenseDefinition) {
  Rng rng(6);
  const Dims dims{4, 3, 5};
  CpModel m(dims, 2);
  m.init_random(rng);
  // Fully observed random tensor.
  SparseTensor t(dims);
  Index idx(3, 0);
  do {
    t.push_back(idx, rng.normal());
  } while (next_index(idx, dims));

  for (std::size_t mode = 0; mode < 3; ++mode) {
    linalg::Matrix out(dims[mode], 2);
    sparse_mttkrp(t, m, mode, out);
    // Brute-force reference.
    linalg::Matrix reference(dims[mode], 2, 0.0);
    for (std::size_t e = 0; e < t.nnz(); ++e) {
      const Index i = t.entry_index(e);
      for (std::size_t r = 0; r < 2; ++r) {
        double z = 1.0;
        for (std::size_t j = 0; j < 3; ++j) {
          if (j != mode) z *= m.factor(j)(i[j], r);
        }
        reference(i[mode], r) += t.value(e) * z;
      }
    }
    EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-10);
  }
}

TEST(Mttkrp, HadamardRowSkipsMode) {
  Rng rng(7);
  CpModel m({2, 3, 4}, 3);
  m.init_random(rng);
  SparseTensor t({2, 3, 4});
  t.push_back({1, 2, 3}, 1.0);
  std::vector<double> z(3);
  hadamard_row(m, t, 0, 1, z.data());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(z[r], m.factor(0)(1, r) * m.factor(2)(3, r), 1e-14);
  }
}

TEST(Mttkrp, SqResidualObservedZeroForExactModel) {
  Rng rng(8);
  CpModel m({3, 3}, 2);
  m.init_random(rng);
  SparseTensor t({3, 3});
  t.push_back({0, 1}, m.eval({0, 1}));
  t.push_back({2, 2}, m.eval({2, 2}));
  EXPECT_NEAR(sq_residual_observed(t, m), 0.0, 1e-18);
}

TEST(Mttkrp, ThreadedMatchesSerialReference) {
  Rng rng(9);
  const Dims dims{6, 5, 4};
  CpModel m(dims, 3);
  m.init_random(rng);
  SparseTensor t(dims);
  Index idx(3, 0);
  do {
    if (rng.uniform() < 0.6) t.push_back(idx, rng.normal());
  } while (next_index(idx, dims));
  ASSERT_GT(t.nnz(), 0u);

  for (std::size_t mode = 0; mode < 3; ++mode) {
    linalg::Matrix reference(dims[mode], 3);
    sparse_mttkrp_serial(t, m, mode, reference);
#ifdef CPR_HAVE_OPENMP
    const cpr::testing::ThreadCountGuard guard;
    for (const int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      linalg::Matrix out(dims[mode], 3);
      sparse_mttkrp(t, m, mode, out);
      EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12)
          << "mode " << mode << ", " << threads << " threads";
    }
#else
    linalg::Matrix out(dims[mode], 3);
    sparse_mttkrp(t, m, mode, out);
    EXPECT_LT(linalg::max_abs_diff(out, reference), 1e-12);
#endif
  }
}

TEST(DenseAls, RecoversExactLowRankTensor) {
  Rng rng(9);
  CpModel truth({6, 5, 4}, 2);
  truth.init_random(rng);
  const DenseTensor t = truth.reconstruct();

  DenseAlsOptions options;
  options.rank = 2;
  options.max_sweeps = 200;
  options.tol = 1e-12;
  CpModel fitted(t.dims(), 2);
  fitted.init_random(rng, 0.5);
  const auto report = cp_als_dense(t, fitted, options);
  EXPECT_GT(report.final_fit, 0.9999);
}

TEST(DenseAls, FitImprovesWithRank) {
  Rng rng(10);
  // A tensor that is not low-rank: random entries.
  DenseTensor t({5, 5, 5});
  for (std::size_t k = 0; k < t.size(); ++k) t[k] = rng.normal();
  double previous_fit = -1.0;
  for (const std::size_t rank : {1u, 4u, 16u}) {
    DenseAlsOptions options;
    options.rank = rank;
    options.max_sweeps = 60;
    CpModel m(t.dims(), rank);
    m.init_random(rng, 0.3);
    const auto report = cp_als_dense(t, m, options);
    EXPECT_GT(report.final_fit, previous_fit - 0.02);
    previous_fit = report.final_fit;
  }
}

TEST(DenseAls, OrderTwoMatchesSvdAccuracy) {
  // For matrices, rank-R CP == rank-R SVD truncation in achievable fit.
  Rng rng(11);
  linalg::Matrix a(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = 1.0 / (1.0 + static_cast<double>(i + j));
  }
  DenseTensor t({8, 8});
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) t.at({i, j}) = a(i, j);
  }
  DenseAlsOptions options;
  options.rank = 3;
  options.max_sweeps = 300;
  options.tol = 1e-13;
  CpModel m(t.dims(), 3);
  Rng init_rng(12);
  m.init_random(init_rng, 0.5);
  const auto report = cp_als_dense(t, m, options);
  // Hilbert-like matrices have rapidly decaying spectrum; rank 3 fits > 99.9%.
  EXPECT_GT(report.final_fit, 0.999);
}

}  // namespace
}  // namespace cpr::tensor
