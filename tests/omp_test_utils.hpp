#pragma once
// Shared OpenMP test helpers.

#ifdef CPR_HAVE_OPENMP
#include <omp.h>

namespace cpr::testing {

/// Restores the global OpenMP thread count even if the guarded scope throws
/// or a failing assertion returns from the test body early.
struct ThreadCountGuard {
  int saved = omp_get_max_threads();
  ~ThreadCountGuard() { omp_set_num_threads(saved); }
};

}  // namespace cpr::testing
#endif  // CPR_HAVE_OPENMP
