// Tests for the dense linear-algebra substrate: matrix ops, BLAS kernels,
// Cholesky/QR/LU solvers, Jacobi SVD and symmetric eigensolver, CG.

#include <gtest/gtest.h>

#include <cmath>

#ifdef CPR_HAVE_OPENMP
#include <omp.h>

#include "omp_test_utils.hpp"
#endif

#include "linalg/blas.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/cholesky_tiled.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/qr_tiled.hpp"
#include "linalg/svd.hpp"
#include "linalg/tiled_matrix.hpp"
#include "util/kernel_mode.hpp"
#include "util/rng.hpp"

namespace cpr::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal(0.0, scale);
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd(n, n);
  syrk_tn(a, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, RowColAccessors) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  m.set_row(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  m.set_col(0, {10, 11});
  EXPECT_DOUBLE_EQ(m(1, 0), 11.0);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  EXPECT_EQ(max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(Matrix, IdentityAndFrobenius) {
  Matrix m(3, 3);
  m.set_identity();
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(3.0), 1e-15);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
}

TEST(Matrix, SerializationRoundTrip) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  BufferSink sink;
  a.serialize(sink);
  BufferSource source(sink.buffer());
  const Matrix b = Matrix::deserialize(source);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Blas, GemmMatchesManual) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  gemm(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, GemmAlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 0}, {0, 2}};
  Matrix c{{1, 1}, {1, 1}};
  gemm(a, b, c, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(c(0, 0), 6.5);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.5);
}

TEST(Blas, GemmTnMatchesExplicitTranspose) {
  Rng rng(3);
  const Matrix a = random_matrix(6, 4, rng);
  const Matrix b = random_matrix(6, 5, rng);
  Matrix c1(4, 5), c2(4, 5);
  gemm_tn(a, b, c1);
  gemm(a.transposed(), b, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
}

TEST(Blas, GemvAndGemvT) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Vector x{1, 1, 1}, y(2, 0.0);
  gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vector z(3, 0.0), w{1, 1};
  gemv_t(a, w, z);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Blas, SyrkMatchesGemm) {
  Rng rng(4);
  const Matrix a = random_matrix(8, 5, rng);
  Matrix c1(5, 5), c2(5, 5);
  syrk_tn(a, c1);
  gemm(a.transposed(), a, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
}

#ifdef CPR_HAVE_OPENMP
TEST(Blas, ParallelKernelsMatchSerialAboveThreshold) {
  // Sizes chosen to cross the >2^16 work thresholds that gate the threaded
  // branches of gemm_tn, gemv_t, and syrk_tn; the row/column-owned
  // partitions claim bitwise-identical results, so compare exactly.
  Rng rng(31);
  const Matrix a = random_matrix(70, 60, rng);   // k x m for _tn kernels
  const Matrix b = random_matrix(70, 80, rng);   // k x n
  const Matrix wide = random_matrix(300, 250, rng);
  Vector x300(300);
  for (std::size_t i = 0; i < 300; ++i) x300[i] = rng.normal();

  const cpr::testing::ThreadCountGuard guard;
  omp_set_num_threads(1);
  Matrix tn_serial(60, 80), syrk_serial(60, 60);
  Vector gemv_t_serial(250, 0.0);
  gemm_tn(a, b, tn_serial);
  syrk_tn(a, syrk_serial);
  gemv_t(wide, x300, gemv_t_serial);

  for (const int threads : {2, 8}) {
    omp_set_num_threads(threads);
    Matrix tn_par(60, 80), syrk_par(60, 60);
    Vector gemv_t_par(250, 0.0);
    gemm_tn(a, b, tn_par);
    syrk_tn(a, syrk_par);
    gemv_t(wide, x300, gemv_t_par);
    EXPECT_EQ(max_abs_diff(tn_par, tn_serial), 0.0) << threads << " threads";
    EXPECT_EQ(max_abs_diff(syrk_par, syrk_serial), 0.0) << threads << " threads";
    for (std::size_t j = 0; j < 250; ++j) {
      ASSERT_EQ(gemv_t_par[j], gemv_t_serial[j]) << "col " << j << ", " << threads
                                                 << " threads";
    }
  }
}
#endif  // CPR_HAVE_OPENMP

TEST(Blas, VectorKernels) {
  Vector x{3, 4}, y{1, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 7.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  scal(0.5, y);
  EXPECT_DOUBLE_EQ(y[1], 4.5);
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, SolveSpdRecoversSolution) {
  Rng rng(5 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.normal();
  Vector b(n, 0.0);
  gemv(a, x_true, b);
  const auto x = solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes, ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

TEST(Cholesky, FactorOfKnownMatrix) {
  Matrix a{{4, 2}, {2, 5}};
  ASSERT_TRUE(cholesky_factor(a));
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
}

TEST(Cholesky, FailsOnIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(Cholesky, JitterRescuesSingular) {
  Matrix a{{1, 1}, {1, 1}};  // rank 1
  const auto x = solve_spd(a, {1.0, 1.0});
  ASSERT_TRUE(x.has_value());
  // Jittered solve of a consistent system stays near a valid solution.
  EXPECT_NEAR((*x)[0] + (*x)[1], 1.0, 1e-3);
}

TEST(Cholesky, MultiRhsAgreesWithSingle) {
  Rng rng(6);
  const Matrix a = random_spd(6, rng);
  const Matrix b = random_matrix(6, 3, rng);
  const auto x = solve_spd_multi(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t c = 0; c < 3; ++c) {
    const auto xc = solve_spd(a, b.col(c));
    ASSERT_TRUE(xc.has_value());
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR((*x)(i, c), (*xc)[i], 1e-10);
  }
}

TEST(Cholesky, LogDetMatchesKnown) {
  Matrix a{{4, 0}, {0, 9}};
  const auto logdet = logdet_spd(a);
  ASSERT_TRUE(logdet.has_value());
  EXPECT_NEAR(*logdet, std::log(36.0), 1e-12);
}

TEST(Qr, ReconstructsInput) {
  Rng rng(7);
  const Matrix a = random_matrix(10, 4, rng);
  const auto fact = qr_factor(a);
  const Matrix q = fact.thin_q();
  const Matrix r = fact.r();
  Matrix qr(10, 4);
  gemm(q, r, qr);
  EXPECT_LT(max_abs_diff(qr, a), 1e-10);
}

TEST(Qr, ThinQHasOrthonormalColumns) {
  Rng rng(8);
  const Matrix a = random_matrix(12, 5, rng);
  const Matrix q = qr_factor(a).thin_q();
  Matrix qtq(5, 5);
  syrk_tn(q, qtq);
  Matrix eye(5, 5);
  eye.set_identity();
  EXPECT_LT(max_abs_diff(qtq, eye), 1e-10);
}

class LeastSquaresSizes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LeastSquaresSizes, RecoversExactSolution) {
  const auto [m, n] = GetParam();
  Rng rng(9);
  const Matrix a = random_matrix(m, n, rng);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.normal();
  Vector b(m, 0.0);
  gemv(a, x_true, b);
  const Vector x = solve_least_squares(a, b);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(x[j], x_true[j], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeastSquaresSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{5, 5},
                                           std::pair<std::size_t, std::size_t>{20, 5},
                                           std::pair<std::size_t, std::size_t>{100, 10},
                                           std::pair<std::size_t, std::size_t>{64, 1}));

TEST(Qr, LeastSquaresMinimizesResidual) {
  Rng rng(10);
  const Matrix a = random_matrix(30, 4, rng);
  Vector b(30);
  for (auto& v : b) v = rng.normal();
  const Vector x = solve_least_squares(a, b);
  // Residual must be orthogonal to the column space: A^T r = 0.
  Vector r = b;
  Vector ax(30, 0.0);
  gemv(a, x, ax);
  for (std::size_t i = 0; i < 30; ++i) r[i] -= ax[i];
  Vector atr(4, 0.0);
  gemv_t(a, r, atr);
  EXPECT_LT(norm2(atr), 1e-9);
}

TEST(Qr, RidgeShrinksSolution) {
  Rng rng(11);
  const Matrix a = random_matrix(20, 5, rng);
  Vector b(20);
  for (auto& v : b) v = rng.normal();
  const Vector x0 = solve_ridge(a, b, 0.0);
  const Vector x1 = solve_ridge(a, b, 100.0);
  EXPECT_LT(norm2(x1), norm2(x0));
}

TEST(Svd, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 2}};
  const auto s = svd(a);
  EXPECT_NEAR(s.sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(s.sigma[1], 2.0, 1e-12);
}

class SvdShapes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  Rng rng(12);
  const Matrix a = random_matrix(m, n, rng);
  const auto s = svd(a);
  const Matrix reconstructed = svd_truncate(s, std::min(m, n));
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-9);
  // Singular values are non-increasing and non-negative.
  for (std::size_t k = 1; k < s.sigma.size(); ++k) {
    EXPECT_LE(s.sigma[k], s.sigma[k - 1] + 1e-12);
    EXPECT_GE(s.sigma[k], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{6, 6},
                                           std::pair<std::size_t, std::size_t>{10, 4},
                                           std::pair<std::size_t, std::size_t>{4, 10},
                                           std::pair<std::size_t, std::size_t>{1, 5},
                                           std::pair<std::size_t, std::size_t>{32, 8}));

TEST(Svd, TruncationErrorMatchesTailSingularValues) {
  Rng rng(13);
  const Matrix a = random_matrix(12, 8, rng);
  const auto s = svd(a);
  for (std::size_t rank = 1; rank < 8; ++rank) {
    const Matrix truncated = svd_truncate(s, rank);
    Matrix diff = a;
    diff -= truncated;
    double tail = 0.0;
    for (std::size_t k = rank; k < s.sigma.size(); ++k) tail += s.sigma[k] * s.sigma[k];
    EXPECT_NEAR(diff.frobenius_norm(), std::sqrt(tail), 1e-8);
  }
}

TEST(Svd, SingularVectorsOrthonormal) {
  Rng rng(14);
  const Matrix a = random_matrix(9, 5, rng);
  const auto s = svd(a);
  Matrix utu(5, 5), vtv(5, 5);
  syrk_tn(s.u, utu);
  syrk_tn(s.v, vtv);
  Matrix eye(5, 5);
  eye.set_identity();
  EXPECT_LT(max_abs_diff(utu, eye), 1e-9);
  EXPECT_LT(max_abs_diff(vtv, eye), 1e-9);
}

TEST(Rank1Svd, MatchesFullSvdOnDominantTriple) {
  Rng rng(15);
  const Matrix a = random_matrix(10, 6, rng);
  const auto full = svd(a);
  const auto r1 = rank1_svd(a);
  EXPECT_NEAR(r1.sigma, full.sigma[0], 1e-6 * full.sigma[0]);
  // Vectors match up to sign.
  double dot_u = 0.0;
  for (std::size_t i = 0; i < 10; ++i) dot_u += r1.u[i] * full.u(i, 0);
  EXPECT_NEAR(std::abs(dot_u), 1.0, 1e-6);
}

TEST(Rank1Svd, PositiveMatrixGivesPositiveVectors) {
  Rng rng(16);
  Matrix a(7, 5);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = 0.1 + rng.uniform();
  }
  const auto r1 = rank1_svd(a);
  for (const double u : r1.u) EXPECT_GT(u, 0.0);
  for (const double v : r1.v) EXPECT_GT(v, 0.0);
  EXPECT_GT(r1.sigma, 0.0);
}

TEST(Rank1Svd, ExactOnRankOneMatrix) {
  Vector u{1, 2, 3}, v{4, 5};
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) a(i, j) = u[i] * v[j];
  }
  const auto r1 = rank1_svd(a);
  EXPECT_NEAR(r1.sigma, norm2(u) * norm2(v), 1e-10);
}

TEST(EigenSym, DiagonalMatrix) {
  Matrix a{{5, 0}, {0, -2}};
  const auto e = eigen_sym(a);
  EXPECT_NEAR(e.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], -2.0, 1e-12);
}

TEST(EigenSym, ReconstructsMatrix) {
  Rng rng(17);
  const std::size_t n = 8;
  Matrix a = random_spd(n, rng);
  const auto e = eigen_sym(a);
  Matrix reconstructed(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        reconstructed(i, j) += e.eigenvalues[k] * e.eigenvectors(i, k) * e.eigenvectors(j, k);
      }
    }
  }
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-9);
}

TEST(EigenSym, AgreesWithSvdOnGram) {
  Rng rng(18);
  const Matrix a = random_matrix(10, 5, rng);
  Matrix gram(5, 5);
  syrk_tn(a, gram);
  const auto e = eigen_sym(gram);
  const auto s = svd(a);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(std::sqrt(std::max(0.0, e.eigenvalues[k])), s.sigma[k], 1e-8);
  }
}

TEST(Cg, SolvesSpdSystem) {
  Rng rng(19);
  const Matrix a = random_spd(20, rng);
  Vector x_true(20);
  for (auto& v : x_true) v = rng.normal();
  Vector b(20, 0.0);
  gemv(a, x_true, b);
  const auto result = conjugate_gradient(
      [&](const Vector& x, Vector& out) {
        out.assign(20, 0.0);
        gemv(a, x, out);
      },
      b, 500, 1e-12);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(result.x[i], x_true[i], 1e-6);
}

TEST(Cg, ConvergesInNStepsExactArithmetic) {
  Matrix a{{4, 1}, {1, 3}};
  const auto result = conjugate_gradient(
      [&](const Vector& x, Vector& out) {
        out.assign(2, 0.0);
        gemv(a, x, out);
      },
      {1.0, 2.0}, 10, 1e-14);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 3);
}

TEST(Cg, WarmStartAtSolutionTakesZeroIterations) {
  Matrix a{{2, 0}, {0, 2}};
  Vector x0{0.5, 1.0};
  const auto result = conjugate_gradient(
      [&](const Vector& x, Vector& out) {
        out.assign(2, 0.0);
        gemv(a, x, out);
      },
      {1.0, 2.0}, 10, 1e-12, &x0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Lu, SolvesGeneralSystem) {
  Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};  // requires pivoting (a00 = 0)
  const auto x = solve_lu(a, {-1.0, -1.0, 1.0});
  ASSERT_TRUE(x.has_value());
  // Verify A x = b.
  Vector ax(3, 0.0);
  gemv(a, *x, ax);
  EXPECT_NEAR(ax[0], -1.0, 1e-12);
  EXPECT_NEAR(ax[1], -1.0, 1e-12);
  EXPECT_NEAR(ax[2], 1.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(solve_lu(a, {1.0, 2.0}).has_value());
}

// ---------------------------------------------------------------------------
// Tiled linalg layer (the CPR_KERNEL=blocked dense factorizations). The
// design contract is bitwise equality with the serial references, so these
// tests compare with EXPECT_EQ / max_abs_diff == 0, not a tolerance.

TEST(TiledMatrix, RoundTripIsBitwiseLossless) {
  Rng rng(201);
  const std::vector<std::pair<std::size_t, std::size_t>> shapes{
      {1, 1}, {5, 3}, {64, 64}, {65, 64}, {100, 81}, {129, 200}};
  for (const auto& [rows, cols] : shapes) {
    const Matrix a = random_matrix(rows, cols, rng);
    for (const std::size_t tile : {4u, 16u, 64u}) {
      const TiledMatrix t = TiledMatrix::from_matrix(a, tile);
      EXPECT_EQ(t.rows(), rows);
      EXPECT_EQ(t.cols(), cols);
      EXPECT_EQ(max_abs_diff(t.to_matrix(), a), 0.0)
          << rows << "x" << cols << " tile " << tile;
      // Element accessor reads through the tile layout.
      EXPECT_EQ(t(rows - 1, cols - 1), a(rows - 1, cols - 1));
      EXPECT_EQ(t(0, cols - 1), a(0, cols - 1));
    }
  }
}

TEST(TiledMatrix, RejectsZeroTileSize) {
  EXPECT_THROW(TiledMatrix(4, 4, 0), CheckError);
}

class TiledCholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TiledCholeskySizes, FactorAndSolvesBitwiseEqualSerial) {
  const std::size_t n = GetParam();
  Rng rng(300 + n);
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();

  Matrix serial = a;
  ASSERT_TRUE(cholesky_factor(serial));
  Vector y_ref, x_ref;
  forward_substitute(serial, b, y_ref);
  backward_substitute_t(serial, y_ref, x_ref);

  for (const std::size_t tile : {4u, 16u, 64u}) {
    TiledMatrix tiled = TiledMatrix::from_matrix(a, tile);
    ASSERT_TRUE(cholesky_factor_tiled(tiled)) << "n " << n << " tile " << tile;
    EXPECT_EQ(max_abs_diff(tiled.to_matrix(), serial), 0.0)
        << "n " << n << " tile " << tile;
    Vector y, x;
    forward_substitute_tiled(tiled, b, y);
    backward_substitute_t_tiled(tiled, y, x);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(y[i], y_ref[i]) << "n " << n << " tile " << tile << " i " << i;
      ASSERT_EQ(x[i], x_ref[i]) << "n " << n << " tile " << tile << " i " << i;
    }
  }
}

// Every size through one default tile, plus multi-tile sizes with remainders
// (odd, prime, exact-multiple, one-past-multiple).
INSTANTIATE_TEST_SUITE_P(Sizes, TiledCholeskySizes,
                         ::testing::Range<std::size_t>(1, 65));
INSTANTIATE_TEST_SUITE_P(MultiTileSizes, TiledCholeskySizes,
                         ::testing::Values(65, 81, 100, 127, 128, 129));

#ifdef CPR_HAVE_OPENMP
TEST(TiledCholesky, ThreadCountInvariant) {
  // The task graph serializes same-tile updates in task-creation order, so
  // the factor must be bitwise-stable across thread counts.
  Rng rng(401);
  const std::size_t n = 129;
  const Matrix a = random_spd(n, rng);
  Matrix serial = a;
  ASSERT_TRUE(cholesky_factor(serial));

  const cpr::testing::ThreadCountGuard guard;
  for (const int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    for (const std::size_t tile : {16u, 64u}) {
      TiledMatrix tiled = TiledMatrix::from_matrix(a, tile);
      ASSERT_TRUE(cholesky_factor_tiled(tiled));
      EXPECT_EQ(max_abs_diff(tiled.to_matrix(), serial), 0.0)
          << threads << " threads, tile " << tile;
    }
  }
}
#endif  // CPR_HAVE_OPENMP

TEST(TiledCholesky, FailsOnNonSpdWhereSerialFails) {
  // Indefiniteness planted in the last diagonal tile: the failing pivot is
  // only reached after the full task graph has run panels and updates.
  Rng rng(402);
  Matrix a = random_spd(80, rng);
  a(79, 79) = -5.0;
  Matrix serial = a;
  ASSERT_FALSE(cholesky_factor(serial));
  for (const std::size_t tile : {16u, 64u}) {
    TiledMatrix tiled = TiledMatrix::from_matrix(a, tile);
    EXPECT_FALSE(cholesky_factor_tiled(tiled)) << "tile " << tile;
  }
}

TEST(CholeskyFactorization, MatchesFreeFunctionsAcrossModes) {
  Rng rng(403);
  const std::size_t n = 100;  // past the tiled dispatch threshold
  const Matrix a = random_spd(n, rng);
  const Matrix b_multi = random_matrix(n, 3, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();

  KernelModeGuard guard;
  set_kernel_mode(KernelMode::Serial);
  const auto ref = CholeskyFactorization::compute(a);
  ASSERT_TRUE(ref.has_value());
  const Vector x_ref = ref->solve(b);
  const Matrix xm_ref = ref->solve_multi(b_multi);
  const double logdet_ref = ref->logdet();

  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
    const auto fact = CholeskyFactorization::compute(a);
    ASSERT_TRUE(fact.has_value());
    EXPECT_EQ(fact->dimension(), n);
    EXPECT_EQ(fact->jitter_applied(), 0.0);
    // One factorization serves solve, multi-solve, and logdet; each must be
    // bitwise-equal to the serial reference and to the free functions.
    const Vector x = fact->solve(b);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(x[i], x_ref[i]);
    EXPECT_EQ(max_abs_diff(fact->solve_multi(b_multi), xm_ref), 0.0);
    EXPECT_EQ(fact->logdet(), logdet_ref);
    EXPECT_EQ(max_abs_diff(fact->factor(), ref->factor()), 0.0);

    const auto x_free = solve_spd(a, b);
    ASSERT_TRUE(x_free.has_value());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ((*x_free)[i], x_ref[i]);
    const auto xm_free = solve_spd_multi(a, b_multi);
    ASSERT_TRUE(xm_free.has_value());
    EXPECT_EQ(max_abs_diff(*xm_free, xm_ref), 0.0);
    const auto ld_free = logdet_spd(a);
    ASSERT_TRUE(ld_free.has_value());
    EXPECT_EQ(*ld_free, logdet_ref);
  }
}

TEST(CholeskyFactorization, JitterIsNotAccumulatedAcrossRetries) {
  // This matrix needs several escalations before it factors; each retry must
  // start from the pristine input plus ONE jitter term. If retries ever
  // compounded (re-jittering an already-jittered buffer), the reported
  // jitter would not reproduce the factor from the original matrix.
  const Matrix a{{-1e-3, 0.0}, {0.0, 1.0}};
  const auto fact = CholeskyFactorization::compute(a);
  ASSERT_TRUE(fact.has_value());
  const double jitter = fact->jitter_applied();
  ASSERT_GT(jitter, 1e-3);  // must out-scale the negative diagonal entry

  // jitter = initial * 100^k exactly for some integer k >= 1.
  const double initial = std::max(1e-12, 1e-10 * (1e-3 + 1.0) / 2.0);
  double expected = initial;
  while (expected < jitter) expected *= 100.0;
  EXPECT_EQ(jitter, expected);

  // The factor is exactly the serial factor of (original + jitter I).
  Matrix manual = a;
  for (std::size_t i = 0; i < 2; ++i) manual(i, i) += jitter;
  ASSERT_TRUE(cholesky_factor(manual));
  EXPECT_EQ(max_abs_diff(fact->factor(), manual), 0.0);
}

TEST(CholeskyFactorization, FailurePropagatesAcrossModes) {
  Rng rng(404);
  Matrix bad = random_spd(100, rng);
  bad(99, 99) = -100.0;  // indefinite, and only in the last tile
  Vector b(100, 1.0);
  KernelModeGuard guard;
  for (const KernelMode mode : {KernelMode::Serial, KernelMode::Blocked}) {
    set_kernel_mode(mode);
    // With zero retries the non-SPD failure must surface, not be papered
    // over by jitter.
    EXPECT_FALSE(CholeskyFactorization::compute(bad, 0).has_value())
        << kernel_mode_name(mode);
    EXPECT_FALSE(solve_spd(bad, b, 0).has_value()) << kernel_mode_name(mode);
    EXPECT_FALSE(logdet_spd(bad).has_value()) << kernel_mode_name(mode);
  }
}

TEST(QrBlocked, BitwiseEqualToSerial) {
  Rng rng(405);
  const std::vector<std::pair<std::size_t, std::size_t>> shapes{
      {1, 1}, {5, 3}, {33, 20}, {40, 33}, {64, 64}, {70, 50}, {129, 65}};
  for (const auto& [m, n] : shapes) {
    const Matrix a = random_matrix(m, n, rng);
    const auto serial = qr_factor_serial(a);
    const auto blocked = qr_factor_blocked(a);
    EXPECT_EQ(max_abs_diff(blocked.qr, serial.qr), 0.0) << m << "x" << n;
    ASSERT_EQ(blocked.tau.size(), serial.tau.size());
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(blocked.tau[k], serial.tau[k]) << m << "x" << n << " k " << k;
    }
  }
}

TEST(QrBlocked, HandlesZeroColumns) {
  // A zero column takes the tau = 0 early-out; the blocked panel must skip
  // it identically.
  Rng rng(406);
  Matrix a = random_matrix(50, 40, rng);
  for (std::size_t i = 0; i < 50; ++i) a(i, 17) = 0.0;
  // Zeroing the trailing rows of column 3 keeps a nonzero reflector but
  // exercises the norm accumulation over a sparse tail.
  for (std::size_t i = 10; i < 50; ++i) a(i, 3) = 0.0;
  const auto serial = qr_factor_serial(a);
  const auto blocked = qr_factor_blocked(a);
  EXPECT_EQ(max_abs_diff(blocked.qr, serial.qr), 0.0);
  for (std::size_t k = 0; k < 40; ++k) ASSERT_EQ(blocked.tau[k], serial.tau[k]);
}

#ifdef CPR_HAVE_OPENMP
TEST(QrBlocked, ThreadCountInvariant) {
  Rng rng(407);
  const Matrix a = random_matrix(150, 120, rng);
  const auto serial = qr_factor_serial(a);
  const cpr::testing::ThreadCountGuard guard;
  for (const int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    const auto blocked = qr_factor_blocked(a);
    EXPECT_EQ(max_abs_diff(blocked.qr, serial.qr), 0.0) << threads << " threads";
    for (std::size_t k = 0; k < 120; ++k) {
      ASSERT_EQ(blocked.tau[k], serial.tau[k]) << threads << " threads, k " << k;
    }
  }
}
#endif  // CPR_HAVE_OPENMP

TEST(Lu, AgreesWithCholeskyOnSpd) {
  Rng rng(20);
  const Matrix a = random_spd(10, rng);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const auto x_lu = solve_lu(a, b);
  const auto x_chol = solve_spd(a, b);
  ASSERT_TRUE(x_lu.has_value() && x_chol.has_value());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR((*x_lu)[i], (*x_chol)[i], 1e-8);
}

}  // namespace
}  // namespace cpr::linalg
