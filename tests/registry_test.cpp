// Tests for the polymorphic model layer: ModelRegistry construction by name
// (with loud rejection of unknown families and hyper-parameters), the
// versioned model archive round-tripping every registered family, archive
// error paths (bad magic, unknown tag, bad version, truncation), legacy
// .cprm read compatibility, polymorphic predict_batch dispatch, and the
// cross-family tune -> save -> reload -> serve conformance loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "baselines/forest.hpp"
#include "common/evaluation.hpp"
#include "common/model_registry.hpp"
#include "common/transform.hpp"
#include "core/cpr_model.hpp"
#include "core/model_file.hpp"
#include "core/online_cpr.hpp"
#include "test_data.hpp"
#include "tune/tuner.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using common::ModelRegistry;
using common::ModelSpec;
using grid::Config;
using grid::ParameterSpec;
using testdata::power_law_params;
using testdata::sample_noisy_power_law;
using testdata::temp_path;
using testdata::zoo_spec;

/// The historical fixture names of this suite.
Dataset sample_power_law(std::size_t n, std::uint64_t seed) {
  return sample_noisy_power_law(n, seed);
}

ModelSpec spec_for(const std::string& family) { return zoo_spec(family); }

TEST(ModelRegistry, ListsTheWholeZoo) {
  const auto names = ModelRegistry::instance().family_names();
  for (const std::string expected :
       {"cpr", "cpr-online", "tucker", "grid", "knn", "rf", "et", "gb", "gp", "svm",
        "nn", "mars", "sgr", "ols", "pmnf"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "family '" << expected << "' not registered";
    EXPECT_FALSE(ModelRegistry::instance().description(expected).empty());
  }
}

TEST(ModelRegistry, RejectsUnknownFamilyAndHyper) {
  EXPECT_THROW(ModelRegistry::instance().create("no-such-model", spec_for("cpr")),
               CheckError);
  ModelSpec typo = spec_for("knn");
  typo.hyper["neighbors"] = "3";  // the key is "k"
  EXPECT_THROW(ModelRegistry::instance().create("knn", typo), CheckError);
  ModelSpec bad_value = spec_for("cpr");
  bad_value.hyper["rank"] = "eight";
  EXPECT_THROW(ModelRegistry::instance().create("cpr", bad_value), CheckError);
}

TEST(ModelRegistry, GridFamiliesNeedParams) {
  ModelSpec empty;
  EXPECT_THROW(ModelRegistry::instance().create("cpr", empty), CheckError);
  EXPECT_THROW(ModelRegistry::instance().create("knn", empty), CheckError);
}

// Every registered family must fit, persist, and reload to a model with
// bitwise-identical predictions — the archive contract the tools rely on.
TEST(ModelArchive, RoundTripsEveryRegisteredFamily) {
  const Dataset train = sample_power_law(512, 1);
  const Dataset probe = sample_power_law(48, 2);
  for (const auto& family : ModelRegistry::instance().family_names()) {
    SCOPED_TRACE("family " + family);
    auto model = ModelRegistry::instance().create(family, spec_for(family));
    ASSERT_NE(model, nullptr);
    model->fit(train);
    const auto path = temp_path("cpr_registry_roundtrip_" + family + ".cprm");
    core::save_model_file(*model, path);
    const auto loaded = core::load_model_file(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->type_tag(), model->type_tag());
    EXPECT_EQ(loaded->name(), model->name());
    EXPECT_EQ(loaded->input_dims(), 2u);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      EXPECT_DOUBLE_EQ(loaded->predict(probe.config(i)), model->predict(probe.config(i)))
          << "probe row " << i;
    }
    std::filesystem::remove(path);
  }
}

// A registry-constructed model must be the same model as the hand-wired one:
// identical predictions bit for bit (the acceptance criterion of the
// registry refactor).
TEST(ModelRegistry, CprMatchesDirectConstructionBitwise) {
  const Dataset train = sample_power_law(1024, 3);
  core::CprOptions options;
  options.rank = 4;
  core::CprModel direct(grid::Discretization(power_law_params(), 8), options);
  direct.fit(train);

  ModelSpec spec;
  spec.params = power_law_params();
  spec.cells = 8;
  spec.hyper = {{"rank", "4"}};
  auto via_registry = ModelRegistry::instance().create("cpr", spec);
  via_registry->fit(train);

  const Dataset probe = sample_power_law(64, 4);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_registry->predict(probe.config(i)),
                     direct.predict(probe.config(i)));
  }
}

TEST(ModelRegistry, BaselineMatchesDirectConstructionBitwise) {
  const Dataset train = sample_power_law(512, 5);
  common::FeatureTransform transform;
  transform.log_target = true;
  transform.log_feature = {true, true};  // both params are log-sampled
  common::LogSpaceRegressor direct(
      std::make_unique<baselines::RandomForestRegressor>(baselines::ForestOptions{}),
      transform);
  direct.fit(train);

  ModelSpec spec;
  spec.params = power_law_params();
  auto via_registry = ModelRegistry::instance().create("rf", spec);
  via_registry->fit(train);

  const Dataset probe = sample_power_law(64, 6);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_registry->predict(probe.config(i)),
                     direct.predict(probe.config(i)));
  }
}

// The default Regressor::predict_batch must agree bitwise with scalar
// predict for families without a batched override, via the base pointer.
TEST(Regressor, DefaultPredictBatchMatchesScalarBitwise) {
  const Dataset train = sample_power_law(256, 7);
  auto model = ModelRegistry::instance().create("knn", spec_for("knn"));
  model->fit(train);
  const Dataset probe = sample_power_law(97, 8);
  const common::Regressor* base = model.get();
  const auto batch = base->predict_batch(probe.x);
  ASSERT_EQ(batch.size(), probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], base->predict(probe.config(i))) << "row " << i;
  }
}

TEST(ModelArchive, RejectsBadMagic) {
  const auto path = temp_path("cpr_registry_bad_magic.cprm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a model archive";
  }
  EXPECT_THROW(core::load_model_file(path), CheckError);
  EXPECT_THROW(core::load_model_file(temp_path("cpr_registry_missing.cprm")),
               CheckError);
  std::filesystem::remove(path);
}

TEST(ModelArchive, RejectsUnknownTypeTagAndVersion) {
  const auto write_archive = [](const std::string& path, const std::string& tag,
                                std::uint64_t version) {
    BufferSink body;
    body.write_string(tag);
    body.write_u64(version);
    std::ofstream out(path, std::ios::binary);
    out.write("CPRARCH1", 8);
    const std::uint64_t size = body.buffer().size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(body.buffer().data()),
              static_cast<std::streamsize>(size));
  };
  const auto unknown_tag = temp_path("cpr_registry_unknown_tag.cprm");
  write_archive(unknown_tag, "no-such-model", 1);
  EXPECT_THROW(core::load_model_file(unknown_tag), CheckError);
  std::filesystem::remove(unknown_tag);

  const auto bad_version = temp_path("cpr_registry_bad_version.cprm");
  write_archive(bad_version, "cpr", 999);
  EXPECT_THROW(core::load_model_file(bad_version), CheckError);
  std::filesystem::remove(bad_version);
}

TEST(ModelArchive, RejectsTruncatedPayload) {
  const Dataset train = sample_power_law(256, 9);
  auto model = ModelRegistry::instance().create("cpr", spec_for("cpr"));
  model->fit(train);
  const auto path = temp_path("cpr_registry_truncated.cprm");
  core::save_model_file(*model, path);
  // File shorter than the declared body: truncated payload.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 16);
  EXPECT_THROW(core::load_model_file(path), CheckError);
  // Body shorter than what the loader reads: serialized buffer underrun.
  std::filesystem::resize_file(path, 8 + sizeof(std::uint64_t) + 4);
  EXPECT_THROW(core::load_model_file(path), CheckError);
  std::filesystem::remove(path);
}

TEST(ModelArchive, RejectsTrailingGarbageInBody) {
  const Dataset train = sample_power_law(256, 13);
  auto model = ModelRegistry::instance().create("cpr", spec_for("cpr"));
  model->fit(train);
  const auto path = temp_path("cpr_registry_trailing.cprm");
  core::save_model_file(*model, path);
  // Append bytes to the body and patch the declared size to cover them: the
  // loader parses the model fine but must reject the unconsumed remainder.
  std::vector<char> bytes(std::filesystem::file_size(path));
  {
    std::ifstream in(path, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + 8, sizeof(size));
  size += 4;
  std::memcpy(bytes.data() + 8, &size, sizeof(size));
  bytes.insert(bytes.end(), {'j', 'u', 'n', 'k'});
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(core::load_model_file(path), CheckError);
  std::filesystem::remove(path);
}

// Files written by the pre-registry CPR-only format must keep loading.
TEST(ModelArchive, ReadsLegacyCprmFiles) {
  const Dataset train = sample_power_law(512, 10);
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(grid::Discretization(power_law_params(), 6), options);
  model.fit(train);

  const auto path = temp_path("cpr_registry_legacy.cprm");
  {
    BufferSink body;
    model.serialize(body);
    std::ofstream out(path, std::ios::binary);
    out.write("CPRMODL1", 8);  // the legacy magic, bare CprModel payload
    const std::uint64_t size = body.buffer().size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(body.buffer().data()),
              static_cast<std::streamsize>(size));
  }
  const auto loaded = core::load_model_file(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->type_tag(), "cpr");
  const Dataset probe = sample_power_law(64, 11);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->predict(probe.config(i)), model.predict(probe.config(i)));
  }
  std::filesystem::remove(path);
}

// Cross-family conformance: for EVERY registry name, a short tune (2 rungs,
// parallel evaluation) must produce a winner that saves through the
// versioned archive and reloads to bitwise-equal predict_batch output — no
// family can silently regress the train -> tune -> save -> serve loop.
TEST(TuneConformance, EveryFamilyTunesSavesReloadsBitwise) {
  const Dataset train = sample_power_law(240, 31);
  const Dataset probe = sample_power_law(32, 32);
  tune::TunerOptions options;
  options.max_trials = 3;
  options.folds = 2;
  options.rungs = 2;
  options.threads = 2;
  options.seed = 5;
  const tune::Tuner tuner(options);
  for (const auto& family : ModelRegistry::instance().family_names()) {
    SCOPED_TRACE("family " + family);
    ASSERT_TRUE(ModelRegistry::instance().has_search_space(family));
    const auto outcome = tuner.run(family, spec_for(family), train);
    ASSERT_NE(outcome.model, nullptr);
    EXPECT_FALSE(outcome.ranked.front().failed()) << outcome.ranked.front().error;
    EXPECT_EQ(outcome.ranked.front().samples, train.size());

    const auto path = temp_path("cpr_tune_conformance_" + family + ".cprm");
    core::save_model_file(*outcome.model, path);
    const auto reloaded = core::load_model_file(path);
    ASSERT_NE(reloaded, nullptr);
    EXPECT_EQ(reloaded->type_tag(), outcome.model->type_tag());
    const auto expected = outcome.model->predict_batch(probe.x);
    const auto got = reloaded->predict_batch(probe.x);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "probe row " << i;
    }
    std::filesystem::remove(path);
  }
}

// The online model archives its full streaming state: a reloaded model keeps
// ingesting observations and refreshing where the saved one left off.
TEST(ModelArchive, OnlineCprKeepsStreamingAfterReload) {
  const Dataset train = sample_power_law(300, 12);
  auto model = ModelRegistry::instance().create("cpr-online", spec_for("cpr-online"));
  model->fit(train);
  const auto path = temp_path("cpr_registry_online.cprm");
  core::save_model_file(*model, path);
  const auto loaded = core::load_model_file(path);
  auto* online = dynamic_cast<core::OnlineCprModel*>(loaded.get());
  ASSERT_NE(online, nullptr);
  EXPECT_EQ(online->observation_count(), 300u);
  EXPECT_TRUE(online->ready());
  online->observe({100.0, 100.0}, 2e-3);
  online->refresh();
  EXPECT_EQ(online->observation_count(), 301u);
  EXPECT_GT(online->predict({100.0, 100.0}), 0.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpr
