// Tests for the util module: RNG determinism and distribution sanity, CLI
// parsing, table/CSV formatting, serialization round-trips, check macros.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <unistd.h>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/perf_json.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace cpr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(42);
  EXPECT_THROW(rng.uniform_int(7, 3), CheckError);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(1.0, 1000.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, LogUniformMedianNearGeometricMean) {
  Rng rng(42);
  std::vector<double> values(20001);
  for (auto& v : values) v = rng.log_uniform(1.0, 10000.0);
  std::nth_element(values.begin(), values.begin() + 10000, values.end());
  // Geometric mean of [1, 10^4] is 100.
  EXPECT_NEAR(std::log10(values[10000]), 2.0, 0.1);
}

TEST(Rng, LogUniformIntWithinBounds) {
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.log_uniform_int(32, 4096);
    EXPECT_GE(v, 32);
    EXPECT_LE(v, 4096);
  }
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(42);
  EXPECT_THROW(rng.log_uniform(0.0, 10.0), CheckError);
  EXPECT_THROW(rng.log_uniform(-1.0, 10.0), CheckError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(42);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : unique) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(42);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(42);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), CheckError);
}

TEST(Hashing, Hash64Deterministic) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_NE(hash64(12345), hash64(12346));
}

TEST(Hashing, HashCombineOrderSensitive) {
  const auto a = hash_combine(hash_combine(0, 1), 2);
  const auto b = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Cli, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--alpha=3.5", "--name=test"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(Cli, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--count", "42"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 42);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--full"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.get_bool("full", false));
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("other"));
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("flag", false));
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "first", "--k=v", "second"};
  CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x,y"});
  const auto path = std::filesystem::temp_directory_path() / "cpr_table_test.csv";
  t.write_csv(path.string());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(row, "1,\"x,y\"");
  std::filesystem::remove(path);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(static_cast<std::int64_t>(42)), "42");
  const auto small = Table::fmt(1.5e-7);
  EXPECT_NE(small.find('e'), std::string::npos);
}

TEST(Serialize, ByteCountMatchesBuffer) {
  ByteCountSink counter;
  BufferSink buffer;
  for (SerialSink* sink : {static_cast<SerialSink*>(&counter),
                           static_cast<SerialSink*>(&buffer)}) {
    sink->write_u64(7);
    sink->write_f64(3.14);
    sink->write_doubles({1.0, 2.0, 3.0});
    sink->write_string("hello");
  }
  EXPECT_EQ(counter.count(), buffer.buffer().size());
}

TEST(Serialize, RoundTripPreservesValues) {
  BufferSink sink;
  sink.write_u64(99);
  sink.write_f64(-2.5);
  sink.write_doubles({4.0, 5.0});
  sink.write_string("cpr");
  BufferSource source(sink.buffer());
  EXPECT_EQ(source.read_u64(), 99u);
  EXPECT_DOUBLE_EQ(source.read_f64(), -2.5);
  EXPECT_EQ(source.read_doubles(), (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(source.read_string(), "cpr");
  EXPECT_TRUE(source.exhausted());
}

TEST(Serialize, UnderrunThrows) {
  BufferSink sink;
  sink.write_u64(1);
  BufferSource source(sink.buffer());
  source.read_u64();
  EXPECT_THROW(source.read_u64(), CheckError);
}

TEST(Check, ThrowsWithMessage) {
  try {
    CPR_CHECK_MSG(false, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_GE(watch.milliseconds(), 0.0);
}

// --- perf JSON (the BENCH_*.json emitter/parser behind cpr_bench) ---------

/// Temp file that removes itself; the emitter API is path-based.
struct TempPerfFile {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("cpr_perf_json_test_" + std::to_string(::getpid()) + ".json");
  ~TempPerfFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

TEST(PerfJson, RoundTripsRecordsThroughAFile) {
  // The satellite guarantee: what --json writes, cpr_bench parses back with
  // every schema field (suite/case/seconds/model_bytes) intact.
  const std::vector<util::PerfRecord> records = {
      {"micro_kernels", "BM_SparseMttkrpSerial/16", 3.9e-4, 0},
      {"kernel_suite", "mttkrp/rank64", 2.81e-4, 0},
      {"fig7_error_vs_modelsize", "MM/CPR/cells=16 rank=8", 1.25, 43112},
      {"kernel_suite", "predict_batch_int8/1024", 2.1e-4, 9001, "int8"},
  };
  TempPerfFile file;
  util::write_perf_json(file.path.string(), records);
  const auto parsed = util::parse_perf_json_file(file.path.string());
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].suite, records[i].suite);
    EXPECT_EQ(parsed[i].name, records[i].name);
    EXPECT_NEAR(parsed[i].seconds, records[i].seconds,
                1e-9 * std::abs(records[i].seconds));
    EXPECT_EQ(parsed[i].model_bytes, records[i].model_bytes);
    EXPECT_EQ(parsed[i].quant_mode, records[i].quant_mode);
  }
  EXPECT_EQ(parsed[0].quant_mode, "fp64");  // the defaulted member round-trips
}

TEST(PerfJson, QuantModeIsOptionalOnParseButValidatedWhenPresent) {
  // Pre-quantization baseline files have no quant_mode key; they must keep
  // parsing with the fp64 default so the committed baseline stays valid.
  const auto legacy = util::parse_perf_json(
      "[{\"suite\": \"s\", \"case\": \"c\", \"seconds\": 1, \"model_bytes\": 2}]");
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0].quant_mode, "fp64");
  // When the key is present, only the four known modes pass.
  EXPECT_THROW(util::parse_perf_json("[{\"suite\": \"s\", \"case\": \"c\", "
                                     "\"seconds\": 1, \"model_bytes\": 0, "
                                     "\"quant_mode\": \"fp8\"}]"),
               CheckError);
}

TEST(PerfJson, RoundTripsEscapedNamesAndEmptyArrays) {
  const std::vector<util::PerfRecord> records = {
      {"suite", "case with \"quotes\" and \\backslash", 1.0, 7}};
  TempPerfFile file;
  util::write_perf_json(file.path.string(), records);
  const auto parsed = util::parse_perf_json_file(file.path.string());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "case with \"quotes\" and \\backslash");

  util::write_perf_json(file.path.string(), {});
  EXPECT_TRUE(util::parse_perf_json_file(file.path.string()).empty());
}

TEST(PerfJson, RejectsMalformedInputLoudly) {
  // The regression gate must never "pass" on unreadable data.
  EXPECT_THROW(util::parse_perf_json(""), CheckError);
  EXPECT_THROW(util::parse_perf_json("{}"), CheckError);
  EXPECT_THROW(util::parse_perf_json("[{\"suite\": \"s\"}]"), CheckError);  // missing fields
  EXPECT_THROW(util::parse_perf_json("[{\"suite\": \"s\", \"case\": \"c\", "
                                     "\"seconds\": nope, \"model_bytes\": 0}]"),
               CheckError);
  EXPECT_THROW(util::parse_perf_json("[{\"suite\": \"s\", \"case\": \"c\", "
                                     "\"seconds\": 1, \"model_bytes\": 0, "
                                     "\"extra\": 1}]"),
               CheckError);
  EXPECT_THROW(util::parse_perf_json("[{\"suite\": \"s\", \"case\": \"c\", "
                                     "\"seconds\": 1, \"model_bytes\": -1}]"),
               CheckError);  // double->size_t cast would be UB
  EXPECT_THROW(util::parse_perf_json("[] trailing"), CheckError);
  EXPECT_THROW(util::parse_perf_json_file("/nonexistent/perf.json"), CheckError);
}

TEST(PerfJson, DiffFlagsRegressionsNewCasesAndMissingBaselines) {
  const std::vector<util::PerfRecord> baseline = {
      {"kernel_suite", "stable", 1.0, 0},
      {"kernel_suite", "slower", 1.0, 0},
      {"kernel_suite", "faster", 1.0, 0},
      {"kernel_suite", "skipped", 1.0, 0},
  };
  const std::vector<util::PerfRecord> current = {
      {"kernel_suite", "stable", 1.10, 0},   // within the 15% budget
      {"kernel_suite", "slower", 1.40, 0},   // regression
      {"kernel_suite", "faster", 0.25, 0},   // improvement
      {"kernel_suite", "brand_new", 9.0, 0}, // no baseline: never gates
  };
  const auto diff = util::diff_perf(current, baseline, 0.15);
  ASSERT_EQ(diff.deltas.size(), 4u);
  EXPECT_FALSE(diff.deltas[0].regression);
  EXPECT_TRUE(diff.deltas[1].regression);
  EXPECT_NEAR(diff.deltas[1].ratio, 1.40, 1e-12);
  EXPECT_FALSE(diff.deltas[2].regression);
  EXPECT_FALSE(diff.deltas[3].in_baseline);
  EXPECT_FALSE(diff.deltas[3].regression);
  EXPECT_EQ(diff.regressions, 1u);
  ASSERT_EQ(diff.missing.size(), 1u);
  EXPECT_EQ(diff.missing[0].name, "skipped");
}

TEST(PerfJson, DiffExactThresholdIsNotARegression) {
  const std::vector<util::PerfRecord> baseline = {{"s", "c", 1.0, 0}};
  const std::vector<util::PerfRecord> current = {{"s", "c", 1.15, 0}};
  EXPECT_EQ(util::diff_perf(current, baseline, 0.15).regressions, 0u);
}

}  // namespace
}  // namespace cpr
