// Robustness and failure-injection tests: extreme scales, degenerate
// datasets, heavy noise, pathological discretizations, and invalid inputs.
// The models must either produce sane output or fail loudly with
// CheckError — never NaN/inf predictions or silent corruption.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/benchmark_app.hpp"
#include "common/evaluation.hpp"
#include "core/cpr_extrapolation.hpp"
#include "core/cpr_model.hpp"
#include "grid/discretization.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using grid::Config;
using grid::Discretization;
using grid::ParameterSpec;

Discretization two_dim_grid(std::size_t cells = 8) {
  return Discretization({ParameterSpec::numerical_log("x", 1.0, 1024.0),
                         ParameterSpec::numerical_log("y", 1.0, 1024.0)},
                        cells);
}

Dataset make_dataset(std::size_t n, std::uint64_t seed,
                     const std::function<double(const Config&)>& f) {
  Rng rng(seed);
  Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(1.0, 1024.0);
    data.x(i, 1) = rng.log_uniform(1.0, 1024.0);
    data.y[i] = f(data.config(i));
  }
  return data;
}

class ExtremeScales : public ::testing::TestWithParam<double> {};

TEST_P(ExtremeScales, PredictionsTrackTheScale) {
  // Execution times at 1e-9 s (nanobenchmarks) through 1e6 s (week-long
  // jobs) must all work: the log transform + centering make the pipeline
  // scale-free.
  const double scale = GetParam();
  const auto f = [scale](const Config& x) { return scale * x[0] * std::sqrt(x[1]); };
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(two_dim_grid(), options);
  model.fit(make_dataset(2048, 1, f));
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const Config x{rng.log_uniform(1.0, 1024.0), rng.log_uniform(1.0, 1024.0)};
    const double prediction = model.predict(x);
    ASSERT_TRUE(std::isfinite(prediction));
    EXPECT_LT(std::abs(std::log(prediction / f(x))), 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ExtremeScales,
                         ::testing::Values(1e-9, 1e-4, 1.0, 1e3, 1e6));

TEST(Degenerate, SingleObservation) {
  core::CprOptions options;
  options.rank = 1;
  core::CprModel model(two_dim_grid(4), options);
  Dataset single;
  single.x = linalg::Matrix(1, 2);
  single.x(0, 0) = 10.0;
  single.x(0, 1) = 20.0;
  single.y = {0.5};
  model.fit(single);
  // With one observation the model collapses to ~constant; prediction at
  // the observed point must recover it and stay finite everywhere.
  EXPECT_NEAR(model.predict({10.0, 20.0}), 0.5, 0.05);
  EXPECT_TRUE(std::isfinite(model.predict({1000.0, 1.0})));
}

TEST(Degenerate, ConstantRuntime) {
  const auto f = [](const Config&) { return 3.5; };
  core::CprOptions options;
  options.rank = 4;
  core::CprModel model(two_dim_grid(), options);
  model.fit(make_dataset(1024, 3, f));
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const Config x{rng.log_uniform(1.0, 1024.0), rng.log_uniform(1.0, 1024.0)};
    EXPECT_NEAR(model.predict(x), 3.5, 0.05);
  }
}

TEST(Degenerate, AllObservationsInOneCell) {
  // Every sample lands in the same grid cell: the rest of the tensor is
  // unobserved; predictions must still be finite everywhere in-domain.
  Rng rng(5);
  Dataset data;
  data.x = linalg::Matrix(256, 2);
  data.y.resize(256);
  for (std::size_t i = 0; i < 256; ++i) {
    data.x(i, 0) = rng.uniform(2.0, 2.2);
    data.x(i, 1) = rng.uniform(2.0, 2.2);
    data.y[i] = 1.0 + 0.01 * rng.uniform();
  }
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(two_dim_grid(), options);
  model.fit(data);
  EXPECT_TRUE(std::isfinite(model.predict({2.1, 2.1})));
  EXPECT_TRUE(std::isfinite(model.predict({900.0, 900.0})));
  EXPECT_GT(model.predict({900.0, 900.0}), 0.0);
}

TEST(Degenerate, DuplicatedConfigurationsAverage) {
  // The same configuration measured many times with different noise: the
  // cell stores the mean, matching Section 5.1.
  Dataset data;
  data.x = linalg::Matrix(100, 2);
  data.y.resize(100);
  for (std::size_t i = 0; i < 100; ++i) {
    data.x(i, 0) = 50.0;
    data.x(i, 1) = 50.0;
    data.y[i] = (i % 2 == 0) ? 1.0 : 3.0;
  }
  core::CprOptions options;
  options.rank = 1;
  Discretization disc = two_dim_grid(4);
  core::CprModel model(disc, options);
  model.fit(data);
  // The observed cell's reconstructed value is the arithmetic mean of the
  // repeated measurements (Section 5.1). (Point predictions near it also
  // interpolate toward unobserved neighbor cells, so we check the cell.)
  EXPECT_NEAR(model.eval_cell(disc.cell_of({50.0, 50.0})), 2.0, 0.05);
  EXPECT_NEAR(model.predict({50.0, 50.0}), 2.0, 0.6);
}

TEST(Noise, HeavyNoiseDegradesGracefully) {
  const auto clean = [](const Config& x) { return 1e-3 * x[0] * x[1]; };
  Rng noise_rng(6);
  double clean_error = 0.0, noisy_error = 0.0;
  for (const double cv : {0.0, 1.0}) {
    Rng rng(7);
    Dataset data;
    data.x = linalg::Matrix(4096, 2);
    data.y.resize(4096);
    const double sigma = cv > 0 ? std::sqrt(std::log(1 + cv * cv)) : 0.0;
    for (std::size_t i = 0; i < 4096; ++i) {
      data.x(i, 0) = rng.log_uniform(1.0, 1024.0);
      data.x(i, 1) = rng.log_uniform(1.0, 1024.0);
      data.y[i] = clean(data.config(i)) * std::exp(sigma * noise_rng.normal());
    }
    core::CprOptions options;
    options.rank = 2;
    core::CprModel model(two_dim_grid(), options);
    model.fit(data);
    // Evaluate against the clean function.
    Rng test_rng(8);
    std::vector<double> predictions, truths;
    for (int k = 0; k < 200; ++k) {
      const Config x{test_rng.log_uniform(1.0, 1024.0), test_rng.log_uniform(1.0, 1024.0)};
      predictions.push_back(model.predict(x));
      truths.push_back(clean(x));
    }
    (cv == 0.0 ? clean_error : noisy_error) = metrics::mlogq(predictions, truths);
  }
  // 100% CV noise (!) should cost accuracy but not break the model: cell
  // averaging suppresses most of it. (Even the clean fit carries a small
  // Jensen bias — the cell stores log of the within-cell arithmetic mean.)
  EXPECT_LT(clean_error, 0.12);
  EXPECT_LT(noisy_error, 0.5);
  EXPECT_LT(clean_error, noisy_error);
}

TEST(Pathological, VeryHighRankFewSamples) {
  // Rank far above what 64 samples justify: regularization + rebalancing
  // must keep the fit finite and usable.
  core::CprOptions options;
  options.rank = 32;
  core::CprModel model(two_dim_grid(4), options);
  model.fit(make_dataset(64, 9, [](const Config& x) { return 1e-2 * x[0]; }));
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const Config x{rng.log_uniform(1.0, 1024.0), rng.log_uniform(1.0, 1024.0)};
    const double prediction = model.predict(x);
    EXPECT_TRUE(std::isfinite(prediction));
    EXPECT_GT(prediction, 0.0);
  }
}

TEST(Pathological, OneCellPerMode) {
  // Degenerate 1x1 grid: the model is a single constant.
  Discretization tiny({ParameterSpec::numerical_log("x", 1.0, 1024.0),
                       ParameterSpec::numerical_log("y", 1.0, 1024.0)},
                      1);
  core::CprOptions options;
  options.rank = 1;
  core::CprModel model(tiny, options);
  model.fit(make_dataset(128, 11, [](const Config& x) { return 1e-2 * x[0]; }));
  EXPECT_TRUE(std::isfinite(model.predict({5.0, 5.0})));
}

TEST(Pathological, HugeDynamicRangeWithinDataset) {
  // y spanning 12 orders of magnitude in one dataset.
  const auto f = [](const Config& x) { return 1e-9 * std::pow(x[0], 4.0); };
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(two_dim_grid(12), options);
  model.fit(make_dataset(4096, 12, f));
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const Config x{rng.log_uniform(1.0, 1024.0), rng.log_uniform(1.0, 1024.0)};
    EXPECT_LT(std::abs(std::log(model.predict(x) / f(x))), 0.5);
  }
}

TEST(InvalidInput, RejectsNanAndNegativeTimes) {
  core::CprModel model(two_dim_grid(4));
  Dataset bad = make_dataset(16, 14, [](const Config&) { return 1.0; });
  bad.y[3] = -2.0;
  EXPECT_THROW(model.fit(bad), CheckError);
  bad.y[3] = 0.0;
  EXPECT_THROW(model.fit(bad), CheckError);
  // NaN is not > 0, so the same precondition fires.
  bad.y[3] = std::nan("");
  EXPECT_THROW(model.fit(bad), CheckError);
}

TEST(InvalidInput, ExtrapolationModelRejectsCategoricalOutOfRange) {
  Discretization disc({ParameterSpec::numerical_log("x", 1.0, 1024.0),
                       ParameterSpec::categorical("c", 3)},
                      6);
  core::CprExtrapolationOptions options;
  options.rank = 1;
  core::CprExtrapolationModel model(disc, options);
  Rng rng(15);
  Dataset data;
  data.x = linalg::Matrix(512, 2);
  data.y.resize(512);
  for (std::size_t i = 0; i < 512; ++i) {
    data.x(i, 0) = rng.log_uniform(1.0, 1024.0);
    data.x(i, 1) = static_cast<double>(rng.uniform_int(0, 2));
    data.y[i] = 1e-3 * data.x(i, 0) * (1.0 + data.x(i, 1));
  }
  model.fit(data);
  EXPECT_THROW(model.predict({10.0, 7.0}), CheckError);  // category 7 of 3
}

TEST(Determinism, IdenticalFitsAcrossRuns) {
  const auto data = make_dataset(1024, 16, [](const Config& x) { return 0.1 * x[0]; });
  core::CprOptions options;
  options.rank = 4;
  core::CprModel a(two_dim_grid(), options), b(two_dim_grid(), options);
  a.fit(data);
  b.fit(data);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const Config x{rng.log_uniform(1.0, 1024.0), rng.log_uniform(1.0, 1024.0)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Determinism, AppsStableAcrossProcessRestarts) {
  // Guards against accidental use of global state / time in the apps:
  // golden values pinned from a reference run would change only if the
  // deterministic hashing changed.
  const auto mm = apps::make_matmul();
  const double first = mm->execute({256, 256, 256}, 0);
  const double second = mm->execute({256, 256, 256}, 0);
  EXPECT_DOUBLE_EQ(first, second);
  const auto mm2 = apps::make_matmul();
  EXPECT_DOUBLE_EQ(mm2->execute({256, 256, 256}, 0), first);
}

TEST(Domain, QueriesExactlyOnEveryBoundary) {
  Discretization disc = two_dim_grid(8);
  core::CprOptions options;
  options.rank = 2;
  core::CprModel model(disc, options);
  model.fit(make_dataset(2048, 18, [](const Config& x) { return 1e-3 * x[0] * x[1]; }));
  // Predict at every boundary and midpoint value along mode 0.
  for (std::size_t k = 0; k <= 8; ++k) {
    const double x = disc.boundary(0, k);
    EXPECT_TRUE(std::isfinite(model.predict({x, 32.0}))) << "boundary " << k;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const double x = disc.midpoint(0, i);
    EXPECT_TRUE(std::isfinite(model.predict({x, 32.0}))) << "midpoint " << i;
  }
}

}  // namespace
}  // namespace cpr
