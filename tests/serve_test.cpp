// Tests for the serving subsystem: micro-batched predictions must be
// bitwise-identical to serial predict() under concurrent producers, the
// sharded LRU cache must hit/evict deterministically, the model store must
// lazy-load / hot-reload / ref-count archives, the protocol parser must
// reject malformed lines without dying, and a full server session must
// match direct model evaluation bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "serve/server.hpp"
#include "test_data.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using common::ModelRegistry;
using common::ModelSpec;
using grid::Config;
using grid::ParameterSpec;
using testdata::TempModelDir;
using testdata::zoo_spec;

Dataset sample_power_law(std::size_t n, std::uint64_t seed) {
  return testdata::sample_noisy_power_law(n, seed);
}

common::RegressorPtr fit_family(const std::string& family, std::uint64_t seed = 7) {
  auto model = ModelRegistry::instance().create(family, zoo_spec(family));
  model->fit(sample_power_law(256, seed));
  return model;
}

/// Wraps a fitted model in a store-style handle without touching disk.
serve::ModelHandle handle_for(common::RegressorPtr model, std::uint64_t generation = 1) {
  auto loaded = std::make_shared<serve::LoadedModel>();
  loaded->name = model->type_tag();
  loaded->generation = generation;
  loaded->model = std::move(model);
  return loaded;
}

Config random_config(Rng& rng) {
  return {rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
}

// ---------------------------------------------------------------- batcher

TEST(MicroBatcher, ConcurrentProducersMatchSerialPredictBitwise) {
  const serve::ModelHandle cpr_handle = handle_for(fit_family("cpr"));
  const serve::ModelHandle knn_handle = handle_for(fit_family("knn"));

  serve::MicroBatcher::Options options;
  options.workers = 3;
  options.max_batch = 16;
  options.max_wait_us = 100;
  serve::MicroBatcher batcher(options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 64;
  std::vector<std::vector<Config>> configs(kThreads);
  std::vector<std::vector<std::future<double>>> futures(kThreads);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Interleave the two families so batches must group per model.
        const auto& handle = (i % 2 == 0) ? cpr_handle : knn_handle;
        Config config = random_config(rng);
        futures[t].push_back(batcher.submit(handle, config));
        configs[t].push_back(std::move(config));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const auto& handle = (i % 2 == 0) ? cpr_handle : knn_handle;
      const double expected = handle->model->predict(configs[t][i]);
      const double got = futures[t][i].get();
      EXPECT_EQ(expected, got) << "thread " << t << " request " << i
                               << " diverged from serial predict()";
    }
  }

  const auto stats = batcher.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.max_batch_seen, options.max_batch);
}

TEST(MicroBatcher, RejectsWrongArityAndPropagatesModelErrors) {
  const serve::ModelHandle handle = handle_for(fit_family("cpr"));
  serve::MicroBatcher batcher({});
  EXPECT_THROW(batcher.submit(handle, Config{1.0}), CheckError);        // 1 of 2 dims
  EXPECT_THROW(batcher.submit(handle, Config{1.0, 2.0, 3.0}), CheckError);
}

TEST(MicroBatcher, DrainsQueuedWorkOnDestruction) {
  const serve::ModelHandle handle = handle_for(fit_family("cpr"));
  std::vector<std::future<double>> futures;
  {
    serve::MicroBatcher::Options options;
    options.workers = 1;
    options.max_batch = 4;
    options.max_wait_us = 50;
    serve::MicroBatcher batcher(options);
    Rng rng(3);
    for (std::size_t i = 0; i < 64; ++i) {
      futures.push_back(batcher.submit(handle, random_config(rng)));
    }
  }  // destructor must resolve every promise
  for (auto& future : futures) EXPECT_GT(future.get(), 0.0);
}

// ------------------------------------------------------------------ cache

TEST(PredictionCache, LruEvictionOrderIsDeterministic) {
  serve::PredictionCache cache(3, 1);  // one shard: global LRU order
  cache.put("a", 1.0);
  cache.put("b", 2.0);
  cache.put("c", 3.0);
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a: LRU order b < c < a
  cache.put("d", 4.0);                      // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());

  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.hits, 4u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 3u);
}

TEST(PredictionCache, ShardedHitAccountingIsDeterministic) {
  serve::PredictionCache cache(64, 4);
  for (int i = 0; i < 32; ++i) cache.put("key" + std::to_string(i), i);
  for (int i = 0; i < 32; ++i) {
    const auto value = cache.get("key" + std::to_string(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, static_cast<double>(i));
  }
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(cache.get("absent" + std::to_string(i)));

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 32u);
  EXPECT_EQ(counters.misses, 8u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.entries, 32u);
  EXPECT_EQ(counters.shards, 4u);
}

TEST(PredictionCache, ZeroCapacityDisables) {
  serve::PredictionCache cache(0);
  cache.put("a", 1.0);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.counters().hits + cache.counters().misses, 0u);
}

TEST(PredictionCache, KeyQuantizationCollapsesFloatNoiseOnly) {
  const Config base{1024.0, 3.141592653589793};
  Config noisy = base;
  noisy[1] *= 1.0 + 1e-15;  // sub-quantum relative noise
  Config distinct = base;
  distinct[1] *= 1.5;
  EXPECT_EQ(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 1, noisy));
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 1, distinct));
  // Model name and generation are part of the key: reloads age out entries.
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 2, base));
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("n", 1, base));
}

// ------------------------------------------------------------------ store

TEST(ModelStore, LazyLoadUnloadAndRefCounting) {
  TempModelDir dir("store");
  dir.save("pl", *fit_family("cpr"));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  EXPECT_EQ(store.available(), std::vector<std::string>{"pl"});
  EXPECT_TRUE(store.loaded_names().empty());  // lazy: nothing resident yet

  const serve::ModelHandle handle = store.acquire("pl");
  EXPECT_EQ(handle->model->type_tag(), "cpr");
  EXPECT_EQ(store.loaded_names(), std::vector<std::string>{"pl"});
  EXPECT_EQ(store.acquire("pl").get(), handle.get());  // cached instance

  store.unload("pl");
  EXPECT_TRUE(store.loaded_names().empty());
  // The in-flight handle keeps serving after UNLOAD.
  EXPECT_GT(handle->model->predict({100.0, 100.0}), 0.0);

  EXPECT_THROW(store.acquire("missing"), CheckError);
  EXPECT_THROW(store.unload("pl"), CheckError);
  EXPECT_THROW(store.acquire("../pl"), CheckError);  // path traversal
}

TEST(ModelStore, HotReloadReplacesChangedArchive) {
  TempModelDir dir("reload");
  const std::string path = dir.save("pl", *fit_family("cpr", /*seed=*/7));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle first = store.acquire("pl");

  // Rewrite the archive with a different fit and force a distinct mtime
  // (filesystem timestamps can be coarser than this test's runtime).
  dir.save("pl", *fit_family("cpr", /*seed=*/8));
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));

  const serve::ModelHandle second = store.acquire("pl");
  EXPECT_NE(first.get(), second.get());
  EXPECT_GT(second->generation, first->generation);
  // Both instances stay fully usable (ref-counting).
  const Config probe{100.0, 100.0};
  EXPECT_GT(first->model->predict(probe), 0.0);
  EXPECT_GT(second->model->predict(probe), 0.0);
}

TEST(ModelStore, CorruptRewriteKeepsServingTheResidentInstance) {
  TempModelDir dir("midwrite");
  const std::string path = dir.save("pl", *fit_family("cpr"));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle resident = store.acquire("pl");

  // Simulate a non-atomic rewrite caught mid-flight: changed mtime, body
  // truncated. acquire() must fall back to the resident instance instead
  // of throwing an ERR at clients.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "CPRARCH1";
    const std::uint64_t body_size = 100;  // promised but not delivered
    out.write(reinterpret_cast<const char*>(&body_size), sizeof(body_size));
    out << "short";
  }
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_EQ(store.acquire("pl").get(), resident.get());

  // Without a resident instance the corrupt archive fails loudly.
  store.unload("pl");
  EXPECT_THROW(store.acquire("pl"), CheckError);
}

// --------------------------------------------------------------- protocol

TEST(Protocol, ParsesWellFormedRequests) {
  const auto predict = serve::parse_request("PREDICT mm 1024,512,8");
  EXPECT_EQ(predict.kind, serve::RequestKind::Predict);
  EXPECT_EQ(predict.model, "mm");
  EXPECT_EQ(predict.values, (Config{1024.0, 512.0, 8.0}));

  EXPECT_EQ(serve::parse_request("LOAD mm").kind, serve::RequestKind::Load);
  EXPECT_EQ(serve::parse_request("UNLOAD mm").model, "mm");
  EXPECT_EQ(serve::parse_request("STATS").kind, serve::RequestKind::Stats);
  EXPECT_EQ(serve::parse_request("QUIT").kind, serve::RequestKind::Quit);
}

TEST(Protocol, RejectsMalformedLines) {
  const char* malformed[] = {
      "",                       // empty
      "PREDICT",                // missing model + values
      "PREDICT mm",             // missing values
      "PREDICT mm 1,2 3",       // wrong arity (stray token)
      "PREDICT mm 1,,2",        // empty value entry
      "PREDICT mm 1,nan",       // NaN value
      "PREDICT mm 1,inf",       // infinite value
      "PREDICT mm 1,zzz",       // non-numeric value
      "PREDICT mm 1.5e2junk",   // trailing junk
      "LOAD",                   // missing model
      "LOAD a b",               // stray token
      "STATS now",              // stray token
      "FROBNICATE mm",          // unknown command
      "predict mm 1,2",         // commands are case-sensitive
  };
  for (const char* line : malformed) {
    EXPECT_THROW(serve::parse_request(line), CheckError) << "accepted: '" << line << "'";
  }
}

TEST(Protocol, PredictionReplyRoundTripsBitwise) {
  for (const double value : {1.5e-6, 3.141592653589793, 8.67e4}) {
    const std::string reply = serve::format_prediction(value);
    ASSERT_EQ(reply.rfind("OK ", 0), 0u);
    EXPECT_EQ(std::stod(reply.substr(3)), value);
  }
  EXPECT_EQ(serve::format_error("CPR_CHECK failed: (x) at f.cpp:1 — bad news"),
            "ERR bad news");
}

// ----------------------------------------------------------------- server

TEST(Server, SessionMatchesDirectEvaluationBitwise) {
  TempModelDir dir("server");
  const auto cpr_model = fit_family("cpr");
  const auto knn_model = fit_family("knn");
  dir.save("pl-cpr", *cpr_model);
  dir.save("pl-knn", *knn_model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  serve::Server server(options);

  EXPECT_EQ(server.handle_line("LOAD pl-cpr").text,
            "OK loaded pl-cpr type=cpr dims=2 bytes=" +
                std::to_string(cpr_model->model_size_bytes()));
  EXPECT_EQ(server.handle_line("LOAD pl-knn").text.rfind("OK loaded pl-knn", 0), 0u);

  Rng rng(11);
  for (std::size_t i = 0; i < 32; ++i) {
    const Config config = random_config(rng);
    const auto& model = (i % 2 == 0) ? cpr_model : knn_model;
    const std::string name = (i % 2 == 0) ? "pl-cpr" : "pl-knn";
    std::ostringstream line;
    line.precision(17);
    line << "PREDICT " << name << " " << config[0] << "," << config[1];
    const auto reply = server.handle_line(line.str());
    ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
    EXPECT_EQ(std::stod(reply.text.substr(3)), model->predict(config))
        << "request " << i << " diverged from direct predict()";
  }

  // Repeats are served from the cache and stay bitwise-identical.
  const auto first = server.handle_line("PREDICT pl-cpr 100,200");
  const auto second = server.handle_line("PREDICT pl-cpr 100,200");
  EXPECT_EQ(first.text, second.text);
  EXPECT_GE(server.cache_counters().hits, 1u);

  const auto stats = server.handle_line("STATS");
  EXPECT_NE(stats.text.find("predicts"), std::string::npos);
  EXPECT_NE(stats.text.find("cache_hits"), std::string::npos);
  EXPECT_EQ(stats.text.substr(stats.text.size() - 2), "OK");

  // Errors come back as ERR replies, never exceptions.
  EXPECT_EQ(server.handle_line("PREDICT nosuch 1,2").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("PREDICT pl-cpr 1,2,3").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("PREDICT pl-cpr 1,nan").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("UNLOAD nosuch").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("garbage").text.rfind("ERR ", 0), 0u);

  const auto quit = server.handle_line("QUIT");
  EXPECT_TRUE(quit.quit);
  EXPECT_EQ(quit.text, "OK bye");
}

TEST(Server, LazyLoadOnPredictAndConcurrentClients) {
  TempModelDir dir("concurrent");
  const auto model = fit_family("cpr");
  dir.save("pl", *model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 100;
  options.cache_capacity = 64;  // small: forces evictions under load
  serve::Server server(options);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kRequests = 48;
  std::vector<std::string> failures[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c % 3);  // overlapping streams: some cache hits
      for (std::size_t i = 0; i < kRequests; ++i) {
        const Config config = random_config(rng);
        std::ostringstream line;
        line.precision(17);
        line << "PREDICT pl " << config[0] << "," << config[1];
        const auto reply = server.handle_line(line.str());
        const double expected = model->predict(config);
        if (reply.text != serve::format_prediction(expected)) {
          failures[c].push_back(line.str() + " -> " + reply.text);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty())
        << failures[c].size() << " mismatches, first: " << failures[c].front();
  }
  // The first PREDICT lazy-loaded the model without an explicit LOAD.
  EXPECT_EQ(server.store().loaded_names(), std::vector<std::string>{"pl"});
  const auto snapshot = server.request_stats().snapshot();
  EXPECT_EQ(snapshot.predicts, kClients * kRequests);
  EXPECT_EQ(snapshot.errors, 0u);
}

}  // namespace
}  // namespace cpr
