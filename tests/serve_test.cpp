// Tests for the serving subsystem: micro-batched predictions must be
// bitwise-identical to serial predict() under concurrent producers, the
// sharded LRU cache must hit/evict deterministically, the model store must
// lazy-load / hot-reload / ref-count archives, the protocol parser must
// reject malformed lines without dying, and a full server session must
// match direct model evaluation bitwise.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/tcp_server.hpp"
#include "test_data.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using common::ModelRegistry;
using common::ModelSpec;
using grid::Config;
using grid::ParameterSpec;
using testdata::TempModelDir;
using testdata::zoo_spec;

Dataset sample_power_law(std::size_t n, std::uint64_t seed) {
  return testdata::sample_noisy_power_law(n, seed);
}

common::RegressorPtr fit_family(const std::string& family, std::uint64_t seed = 7) {
  auto model = ModelRegistry::instance().create(family, zoo_spec(family));
  model->fit(sample_power_law(256, seed));
  return model;
}

/// The online-serving fixture: a streaming CPR fit for OBSERVE/REFIT tests.
/// Noise-free samples keep the pre-drift fit tight.
common::RegressorPtr fit_online(std::size_t n = 256, std::uint64_t seed = 7) {
  auto model =
      ModelRegistry::instance().create("cpr-online", zoo_spec("cpr-online"));
  model->fit(testdata::sample_power_law(n, seed));
  return model;
}

/// The drifted truth OBSERVEs report: a constant factor above the law the
/// archive was fitted on (log-space shift of ln 8 ≈ 2.08).
double shifted_truth(const Config& config) {
  return 8.0 * testdata::power_law(config);
}

std::string predict_line(const std::string& name, const Config& config) {
  std::ostringstream line;
  line.precision(17);
  line << "PREDICT " << name << " " << config[0] << "," << config[1];
  return line.str();
}

std::string observe_line(const std::string& name, const Config& config,
                         double seconds) {
  std::ostringstream line;
  line.precision(17);
  line << "OBSERVE " << name << " " << config[0] << "," << config[1] << " "
       << seconds;
  return line.str();
}

/// Wraps a fitted model in a store-style handle without touching disk.
serve::ModelHandle handle_for(common::RegressorPtr model, std::uint64_t generation = 1) {
  auto loaded = std::make_shared<serve::LoadedModel>();
  loaded->name = model->type_tag();
  loaded->generation = generation;
  loaded->model = std::move(model);
  return loaded;
}

Config random_config(Rng& rng) {
  return {rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
}

// ---------------------------------------------------------------- batcher

TEST(MicroBatcher, ConcurrentProducersMatchSerialPredictBitwise) {
  const serve::ModelHandle cpr_handle = handle_for(fit_family("cpr"));
  const serve::ModelHandle knn_handle = handle_for(fit_family("knn"));

  serve::MicroBatcher::Options options;
  options.workers = 3;
  options.max_batch = 16;
  options.max_wait_us = 100;
  serve::MicroBatcher batcher(options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 64;
  std::vector<std::vector<Config>> configs(kThreads);
  std::vector<std::vector<std::future<double>>> futures(kThreads);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Interleave the two families so batches must group per model.
        const auto& handle = (i % 2 == 0) ? cpr_handle : knn_handle;
        Config config = random_config(rng);
        futures[t].push_back(batcher.submit(handle, config));
        configs[t].push_back(std::move(config));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const auto& handle = (i % 2 == 0) ? cpr_handle : knn_handle;
      const double expected = handle->model->predict(configs[t][i]);
      const double got = futures[t][i].get();
      EXPECT_EQ(expected, got) << "thread " << t << " request " << i
                               << " diverged from serial predict()";
    }
  }

  const auto stats = batcher.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.max_batch_seen, options.max_batch);
}

TEST(MicroBatcher, RejectsWrongArityAndPropagatesModelErrors) {
  const serve::ModelHandle handle = handle_for(fit_family("cpr"));
  serve::MicroBatcher batcher({});
  EXPECT_THROW(batcher.submit(handle, Config{1.0}), CheckError);        // 1 of 2 dims
  EXPECT_THROW(batcher.submit(handle, Config{1.0, 2.0, 3.0}), CheckError);
}

TEST(MicroBatcher, DrainsQueuedWorkOnDestruction) {
  const serve::ModelHandle handle = handle_for(fit_family("cpr"));
  std::vector<std::future<double>> futures;
  {
    serve::MicroBatcher::Options options;
    options.workers = 1;
    options.max_batch = 4;
    options.max_wait_us = 50;
    serve::MicroBatcher batcher(options);
    Rng rng(3);
    for (std::size_t i = 0; i < 64; ++i) {
      futures.push_back(batcher.submit(handle, random_config(rng)));
    }
  }  // destructor must resolve every promise
  for (auto& future : futures) EXPECT_GT(future.get(), 0.0);
}

// ------------------------------------------------------------------ cache

TEST(PredictionCache, LruEvictionOrderIsDeterministic) {
  serve::PredictionCache cache(3, 1);  // one shard: global LRU order
  cache.put("a", 1.0);
  cache.put("b", 2.0);
  cache.put("c", 3.0);
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a: LRU order b < c < a
  cache.put("d", 4.0);                      // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());

  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.hits, 4u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 3u);
}

TEST(PredictionCache, ShardedHitAccountingIsDeterministic) {
  serve::PredictionCache cache(64, 4);
  for (int i = 0; i < 32; ++i) cache.put("key" + std::to_string(i), i);
  for (int i = 0; i < 32; ++i) {
    const auto value = cache.get("key" + std::to_string(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, static_cast<double>(i));
  }
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(cache.get("absent" + std::to_string(i)));

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 32u);
  EXPECT_EQ(counters.misses, 8u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.entries, 32u);
  EXPECT_EQ(counters.shards, 4u);
}

TEST(PredictionCache, ZeroCapacityDisables) {
  serve::PredictionCache cache(0);
  cache.put("a", 1.0);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.counters().hits + cache.counters().misses, 0u);
}

TEST(PredictionCache, KeyQuantizationCollapsesFloatNoiseOnly) {
  const Config base{1024.0, 3.141592653589793};
  Config noisy = base;
  noisy[1] *= 1.0 + 1e-15;  // sub-quantum relative noise
  Config distinct = base;
  distinct[1] *= 1.5;
  EXPECT_EQ(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 1, noisy));
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 1, distinct));
  // Model name and generation are part of the key: reloads age out entries.
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("m", 2, base));
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, base),
            serve::PredictionCache::make_key("n", 1, base));
}

TEST(PredictionCache, KeyNormalizesSignedZeroAndNan) {
  // -0.0 == 0.0 yet prints differently: the key must collapse them, or two
  // inputs the model cannot distinguish would occupy distinct entries.
  EXPECT_EQ(serve::PredictionCache::make_key("m", 1, Config{0.0, 5.0}),
            serve::PredictionCache::make_key("m", 1, Config{-0.0, 5.0}));
  // Every NaN payload and sign collapses to one fixed token instead of
  // leaking whatever printf renders ("nan" vs "-nan(0x...)").
  const double quiet = std::numeric_limits<double>::quiet_NaN();
  const double negative_payload = std::copysign(std::nan("0x7ff"), -1.0);
  EXPECT_EQ(serve::PredictionCache::make_key("m", 1, Config{quiet}),
            serve::PredictionCache::make_key("m", 1, Config{negative_payload}));
  EXPECT_NE(serve::PredictionCache::make_key("m", 1, Config{quiet}),
            serve::PredictionCache::make_key("m", 1, Config{0.0}));
}

// ------------------------------------------------------------------ store

TEST(ModelStore, LazyLoadUnloadAndRefCounting) {
  TempModelDir dir("store");
  dir.save("pl", *fit_family("cpr"));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  EXPECT_EQ(store.available(), std::vector<std::string>{"pl"});
  EXPECT_TRUE(store.loaded_names().empty());  // lazy: nothing resident yet

  const serve::ModelHandle handle = store.acquire("pl");
  EXPECT_EQ(handle->model->type_tag(), "cpr");
  EXPECT_EQ(store.loaded_names(), std::vector<std::string>{"pl"});
  EXPECT_EQ(store.acquire("pl").get(), handle.get());  // cached instance

  store.unload("pl");
  EXPECT_TRUE(store.loaded_names().empty());
  // The in-flight handle keeps serving after UNLOAD.
  EXPECT_GT(handle->model->predict({100.0, 100.0}), 0.0);

  EXPECT_THROW(store.acquire("missing"), CheckError);
  EXPECT_THROW(store.unload("pl"), CheckError);
  EXPECT_THROW(store.acquire("../pl"), CheckError);  // path traversal
}

TEST(ModelStore, HotReloadReplacesChangedArchive) {
  TempModelDir dir("reload");
  const std::string path = dir.save("pl", *fit_family("cpr", /*seed=*/7));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle first = store.acquire("pl");

  // Rewrite the archive with a different fit and force a distinct mtime
  // (filesystem timestamps can be coarser than this test's runtime).
  dir.save("pl", *fit_family("cpr", /*seed=*/8));
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));

  const serve::ModelHandle second = store.acquire("pl");
  EXPECT_NE(first.get(), second.get());
  EXPECT_GT(second->generation, first->generation);
  // Both instances stay fully usable (ref-counting).
  const Config probe{100.0, 100.0};
  EXPECT_GT(first->model->predict(probe), 0.0);
  EXPECT_GT(second->model->predict(probe), 0.0);
}

TEST(ModelStore, CorruptRewriteKeepsServingTheResidentInstance) {
  TempModelDir dir("midwrite");
  const std::string path = dir.save("pl", *fit_family("cpr"));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle resident = store.acquire("pl");

  // Simulate a non-atomic rewrite caught mid-flight: changed mtime, body
  // truncated. acquire() must fall back to the resident instance instead
  // of throwing an ERR at clients.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "CPRARCH1";
    const std::uint64_t body_size = 100;  // promised but not delivered
    out.write(reinterpret_cast<const char*>(&body_size), sizeof(body_size));
    out << "short";
  }
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_EQ(store.acquire("pl").get(), resident.get());

  // Without a resident instance the corrupt archive fails loudly.
  store.unload("pl");
  EXPECT_THROW(store.acquire("pl"), CheckError);
}

TEST(ModelStore, SameMtimeRewriteIsCaughtBySizeChange) {
  TempModelDir dir("samemtime");
  const std::string path = dir.save("pl", *fit_family("cpr"));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle first = store.acquire("pl");
  const auto mtime = std::filesystem::last_write_time(path);

  // Rewrite the archive within the filesystem's timestamp granularity: a
  // different family yields a different byte size, and the mtime is pinned
  // back to the original value. An mtime-only change check serves stale.
  dir.save("pl", *fit_family("knn"));
  ASSERT_NE(std::filesystem::file_size(path), first->size);
  std::filesystem::last_write_time(path, mtime);

  const serve::ModelHandle second = store.acquire("pl");
  EXPECT_NE(second.get(), first.get());
  EXPECT_GT(second->generation, first->generation);
  // The rewritten archive really got loaded (knn rides the log-space wrapper).
  EXPECT_NE(second->model->type_tag(), first->model->type_tag());
}

TEST(ModelStore, TransientStatErrorRetriesInsteadOfArmingThrottle) {
  TempModelDir dir("statretry");
  const std::string path = dir.save("pl", *fit_family("cpr", /*seed=*/7));
  const std::string replacement = dir.save("next", *fit_family("cpr", /*seed=*/8));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(50));
  const serve::ModelHandle first = store.acquire("pl");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // pass the throttle

  // An atomic-rename rewrite caught in the gap where the archive is absent:
  // acquire keeps serving the resident instance, and the failed stat must
  // not count as a completed freshness check.
  std::filesystem::rename(path, path + ".gone");
  EXPECT_EQ(store.acquire("pl").get(), first.get());

  std::filesystem::rename(replacement, path);
  std::filesystem::last_write_time(path, first->mtime + std::chrono::seconds(2));
  // Immediately inside the 50ms window after the failed stat: had the error
  // armed the throttle, this acquire would pin the stale instance.
  const serve::ModelHandle second = store.acquire("pl");
  EXPECT_NE(second.get(), first.get());
  EXPECT_GT(second->generation, first->generation);
}

// ------------------------------------------------------ quantized archives

TEST(ModelStore, ServesQuantizedArchives) {
  TempModelDir dir("quantserve");
  const auto model = fit_family("cpr");
  core::save_model_file(*model, core::model_file_path(dir.path(), "pl"),
                        QuantMode::I8);

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle handle = store.acquire("pl");
  EXPECT_EQ(handle->model->archive_quant_mode(), QuantMode::I8);
  // The dequantized model serves predictions close to the fp64 original
  // (the exact tolerance contract lives in quant_test).
  const Config probe{100.0, 100.0};
  const double original = model->predict(probe);
  EXPECT_NEAR(handle->model->predict(probe), original, 0.15 * std::abs(original));
}

TEST(ModelStore, HotReloadSwapsFp64ToInt8InPlace) {
  TempModelDir dir("quantreload");
  const std::string path = dir.save("pl", *fit_family("cpr", /*seed=*/7));

  serve::ModelStore store(dir.path(), std::chrono::milliseconds(0));
  const serve::ModelHandle first = store.acquire("pl");
  EXPECT_EQ(first->model->archive_quant_mode(), QuantMode::F64);

  // Rewrite the same model as an int8 archive (the shrink-the-fleet
  // rollout), with a forced mtime step for coarse filesystem clocks.
  core::save_model_file(*fit_family("cpr", /*seed=*/7), path, QuantMode::I8);
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));

  const serve::ModelHandle second = store.acquire("pl");
  EXPECT_NE(second.get(), first.get());
  EXPECT_GT(second->generation, first->generation);
  EXPECT_EQ(second->model->archive_quant_mode(), QuantMode::I8);
  EXPECT_GT(second->model->predict({100.0, 100.0}), 0.0);
}

TEST(Server, ObserveAndRefitOnQuantizedModelErrByName) {
  // A cpr-online family model saved through a lossy encoding supports
  // OBSERVE structurally — but replaying observations on dequantized
  // factors would silently diverge from offline training, so the store
  // must refuse both verbs with the model and mode named in the message.
  TempModelDir dir("quantobserve");
  core::save_model_file(*fit_online(), core::model_file_path(dir.path(), "olq"),
                        QuantMode::I8);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 1;
  serve::Server server(options);

  // Serving itself works.
  EXPECT_EQ(server.handle_line(predict_line("olq", {100.0, 200.0})).text.rfind("OK ", 0),
            0u);
  for (const std::string line :
       {observe_line("olq", {100.0, 200.0}, 0.25), std::string("REFIT olq")}) {
    const auto reply = server.handle_line(line);
    EXPECT_EQ(reply.text.rfind("ERR ", 0), 0u) << reply.text;
    EXPECT_NE(reply.text.find("olq"), std::string::npos) << reply.text;
    EXPECT_NE(reply.text.find("int8"), std::string::npos) << reply.text;
    EXPECT_NE(reply.text.find("--quantize=fp64"), std::string::npos) << reply.text;
  }
  // The refusal must not have poisoned the resident model.
  EXPECT_EQ(server.handle_line(predict_line("olq", {100.0, 200.0})).text.rfind("OK ", 0),
            0u);
}

// --------------------------------------------------------------- protocol

TEST(Protocol, ParsesWellFormedRequests) {
  const auto predict = serve::parse_request("PREDICT mm 1024,512,8");
  EXPECT_EQ(predict.kind, serve::RequestKind::Predict);
  EXPECT_EQ(predict.model, "mm");
  EXPECT_EQ(predict.values, (Config{1024.0, 512.0, 8.0}));

  const auto observe = serve::parse_request("OBSERVE mm 1024,512,8 0.125");
  EXPECT_EQ(observe.kind, serve::RequestKind::Observe);
  EXPECT_EQ(observe.model, "mm");
  EXPECT_EQ(observe.values, (Config{1024.0, 512.0, 8.0}));
  EXPECT_EQ(observe.seconds, 0.125);

  EXPECT_EQ(serve::parse_request("REFIT mm").kind, serve::RequestKind::Refit);
  EXPECT_EQ(serve::parse_request("REFIT mm").model, "mm");

  EXPECT_EQ(serve::parse_request("LOAD mm").kind, serve::RequestKind::Load);
  EXPECT_EQ(serve::parse_request("UNLOAD mm").model, "mm");
  EXPECT_EQ(serve::parse_request("STATS").kind, serve::RequestKind::Stats);
  EXPECT_EQ(serve::parse_request("QUIT").kind, serve::RequestKind::Quit);
}

TEST(Protocol, RejectsMalformedLines) {
  const char* malformed[] = {
      "",                       // empty
      "PREDICT",                // missing model + values
      "PREDICT mm",             // missing values
      "PREDICT mm 1,2 3",       // wrong arity (stray token)
      "PREDICT mm 1,,2",        // empty value entry
      "PREDICT mm 1,nan",       // NaN value
      "PREDICT mm 1,inf",       // infinite value
      "PREDICT mm 1,zzz",       // non-numeric value
      "PREDICT mm 1.5e2junk",   // trailing junk
      "OBSERVE",                // missing everything
      "OBSERVE mm",             // missing values + seconds
      "OBSERVE mm 1,2",         // missing seconds
      "OBSERVE mm 1,2 0",       // non-positive seconds
      "OBSERVE mm 1,2 -1.5",    // negative seconds
      "OBSERVE mm 1,2 nan",     // NaN seconds
      "OBSERVE mm 1,2 inf",     // infinite seconds
      "OBSERVE mm 1,nan 3",     // NaN value
      "OBSERVE mm 1,2 3 4",     // stray token
      "REFIT",                  // missing model
      "REFIT mm now",           // stray token
      "LOAD",                   // missing model
      "LOAD a b",               // stray token
      "STATS now",              // stray token
      "FROBNICATE mm",          // unknown command
      "predict mm 1,2",         // commands are case-sensitive
  };
  for (const char* line : malformed) {
    EXPECT_THROW(serve::parse_request(line), CheckError) << "accepted: '" << line << "'";
  }
}

TEST(Protocol, PredictionReplyRoundTripsBitwise) {
  for (const double value : {1.5e-6, 3.141592653589793, 8.67e4}) {
    const std::string reply = serve::format_prediction(value);
    ASSERT_EQ(reply.rfind("OK ", 0), 0u);
    EXPECT_EQ(std::stod(reply.substr(3)), value);
  }
  EXPECT_EQ(serve::format_error("CPR_CHECK failed: (x) at f.cpp:1 — bad news"),
            "ERR bad news");
}

// ----------------------------------------------------------------- server

TEST(Server, SessionMatchesDirectEvaluationBitwise) {
  TempModelDir dir("server");
  const auto cpr_model = fit_family("cpr");
  const auto knn_model = fit_family("knn");
  dir.save("pl-cpr", *cpr_model);
  dir.save("pl-knn", *knn_model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  serve::Server server(options);

  EXPECT_EQ(server.handle_line("LOAD pl-cpr").text,
            "OK loaded pl-cpr type=cpr dims=2 bytes=" +
                std::to_string(cpr_model->model_size_bytes()));
  EXPECT_EQ(server.handle_line("LOAD pl-knn").text.rfind("OK loaded pl-knn", 0), 0u);

  Rng rng(11);
  for (std::size_t i = 0; i < 32; ++i) {
    const Config config = random_config(rng);
    const auto& model = (i % 2 == 0) ? cpr_model : knn_model;
    const std::string name = (i % 2 == 0) ? "pl-cpr" : "pl-knn";
    std::ostringstream line;
    line.precision(17);
    line << "PREDICT " << name << " " << config[0] << "," << config[1];
    const auto reply = server.handle_line(line.str());
    ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
    EXPECT_EQ(std::stod(reply.text.substr(3)), model->predict(config))
        << "request " << i << " diverged from direct predict()";
  }

  // Repeats are served from the cache and stay bitwise-identical.
  const auto first = server.handle_line("PREDICT pl-cpr 100,200");
  const auto second = server.handle_line("PREDICT pl-cpr 100,200");
  EXPECT_EQ(first.text, second.text);
  EXPECT_GE(server.cache_counters().hits, 1u);

  const auto stats = server.handle_line("STATS");
  EXPECT_NE(stats.text.find("predicts"), std::string::npos);
  EXPECT_NE(stats.text.find("cache_hits"), std::string::npos);
  EXPECT_EQ(stats.text.substr(stats.text.size() - 2), "OK");

  // Errors come back as ERR replies, never exceptions.
  EXPECT_EQ(server.handle_line("PREDICT nosuch 1,2").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("PREDICT pl-cpr 1,2,3").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("PREDICT pl-cpr 1,nan").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("UNLOAD nosuch").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("garbage").text.rfind("ERR ", 0), 0u);

  const auto quit = server.handle_line("QUIT");
  EXPECT_TRUE(quit.quit);
  EXPECT_EQ(quit.text, "OK bye");
}

TEST(Server, LazyLoadOnPredictAndConcurrentClients) {
  TempModelDir dir("concurrent");
  const auto model = fit_family("cpr");
  dir.save("pl", *model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 100;
  options.cache_capacity = 64;  // small: forces evictions under load
  serve::Server server(options);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kRequests = 48;
  std::vector<std::string> failures[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c % 3);  // overlapping streams: some cache hits
      for (std::size_t i = 0; i < kRequests; ++i) {
        const Config config = random_config(rng);
        std::ostringstream line;
        line.precision(17);
        line << "PREDICT pl " << config[0] << "," << config[1];
        const auto reply = server.handle_line(line.str());
        const double expected = model->predict(config);
        if (reply.text != serve::format_prediction(expected)) {
          failures[c].push_back(line.str() + " -> " + reply.text);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty())
        << failures[c].size() << " mismatches, first: " << failures[c].front();
  }
  // The first PREDICT lazy-loaded the model without an explicit LOAD.
  EXPECT_EQ(server.store().loaded_names(), std::vector<std::string>{"pl"});
  const auto snapshot = server.request_stats().snapshot();
  EXPECT_EQ(snapshot.predicts, kClients * kRequests);
  EXPECT_EQ(snapshot.errors, 0u);
}

// ------------------------------------------- online learning (OBSERVE/REFIT)

TEST(Server, ObserveRefitPredictMatchesOfflineReplayBitwise) {
  TempModelDir dir("online");
  const std::string path = dir.save("pl", *fit_online());

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  serve::Server server(options);

  // The offline twin: the same archive replaying the same observations in
  // the same order, refreshed once. Serving must match it bitwise.
  const common::RegressorPtr offline = core::load_model_file(path);

  Rng rng(21);
  std::vector<Config> probes;
  for (int i = 0; i < 12; ++i) probes.push_back(random_config(rng));
  std::vector<std::string> before;  // pre-refit replies prime the cache
  for (const Config& probe : probes) {
    const auto reply = server.handle_line(predict_line("pl", probe));
    ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
    before.push_back(reply.text);
  }

  for (int i = 0; i < 48; ++i) {
    const Config config = random_config(rng);
    const double seconds = shifted_truth(config);
    const auto reply = server.handle_line(observe_line("pl", config, seconds));
    ASSERT_EQ(reply.text, "OK observed pl buffered=" + std::to_string(i + 1));
    offline->observe(config, seconds);
  }
  const auto refit = server.handle_line("REFIT pl");
  ASSERT_EQ(refit.text.rfind("OK refit pl generation=", 0), 0u) << refit.text;
  EXPECT_NE(refit.text.find("observations=48"), std::string::npos) << refit.text;
  offline->refresh();

  // Post-refit predictions are bitwise-identical to the offline replay, and
  // the generation-keyed cache entries of the old model never resurface.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto reply = server.handle_line(predict_line("pl", probes[i]));
    ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
    EXPECT_EQ(std::stod(reply.text.substr(3)), offline->predict(probes[i]));
    EXPECT_NE(reply.text, before[i]) << "stale pre-refit cache entry served";
  }

  const auto snapshot = server.request_stats().snapshot();
  EXPECT_EQ(snapshot.observes, 48u);
  EXPECT_EQ(snapshot.refits, 1u);
  EXPECT_EQ(snapshot.refit_failures, 0u);
  EXPECT_EQ(server.store().buffered_observations(), 0u);  // refit drained it
}

TEST(Server, RefitReducesRollingDriftError) {
  TempModelDir dir("drift");
  // A small initial fit so the streamed observations dominate the refit.
  dir.save("pl", *fit_online(/*n=*/64));

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 1;
  options.drift_window = 64;
  serve::Server server(options);

  Rng rng(31);
  const auto stream = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const Config config = random_config(rng);
      const auto reply =
          server.handle_line(observe_line("pl", config, shifted_truth(config)));
      ASSERT_EQ(reply.text.rfind("OK observed", 0), 0u) << reply.text;
    }
  };

  stream(192);
  const double before = server.drift().abs_log_error;
  EXPECT_GT(before, 1.0);  // the 8x shift is ln 8 ≈ 2.08 in log space

  ASSERT_EQ(server.handle_line("REFIT pl").text.rfind("OK refit", 0), 0u);

  stream(64);  // the same drifted truth, now scored against the refit model
  const double after = server.drift().abs_log_error;
  EXPECT_LT(after, before * 0.5) << "refit did not recover the drift error";

  const std::string metrics = server.handle_line("METRICS").text;
  EXPECT_NE(metrics.find("cpr_drift_abs_log_error"), std::string::npos);
  EXPECT_NE(metrics.find("cpr_drift_signed_log_error"), std::string::npos);
  EXPECT_NE(metrics.find("cpr_refits_total 1"), std::string::npos);
  // The post-refit stream is buffered awaiting the next refit.
  EXPECT_NE(metrics.find("cpr_observations_buffered 64"), std::string::npos);
}

TEST(Server, AutoRefitPolicyFiresOffTheRequestPath) {
  TempModelDir dir("autorefit");
  dir.save("pl", *fit_online());

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 1;
  options.refit_after = 8;
  serve::Server server(options);

  Rng rng(41);
  for (int i = 0; i < 8; ++i) {
    const Config config = random_config(rng);
    const auto reply =
        server.handle_line(observe_line("pl", config, shifted_truth(config)));
    ASSERT_EQ(reply.text.rfind("OK observed", 0), 0u) << reply.text;
  }
  // The eighth OBSERVE scheduled a background refit; wait for it to land.
  for (int i = 0; i < 500 && server.trainer().completed() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.trainer().completed(), 1u);
  EXPECT_EQ(server.request_stats().snapshot().refits, 1u);
  EXPECT_GT(server.store().acquire("pl")->generation, 1u);
  EXPECT_EQ(server.store().buffered_observations(), 0u);
}

TEST(Server, ObserveAndRefitFailuresAreErrReplies) {
  TempModelDir dir("onlineerr");
  dir.save("static", *fit_family("cpr"));  // family without observe support
  dir.save("pl", *fit_online());

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 1;
  serve::Server server(options);

  EXPECT_EQ(server.handle_line("OBSERVE nosuch 1,2 3").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("OBSERVE pl 1,2,3 4").text.rfind("ERR ", 0), 0u);
  const auto unsupported = server.handle_line("OBSERVE static 100,200 0.5");
  EXPECT_EQ(unsupported.text.rfind("ERR ", 0), 0u);
  EXPECT_NE(unsupported.text.find("does not support"), std::string::npos)
      << unsupported.text;
  EXPECT_EQ(server.handle_line("REFIT static").text.rfind("ERR ", 0), 0u);
  EXPECT_EQ(server.handle_line("REFIT nosuch").text.rfind("ERR ", 0), 0u);

  // Failed refits surface in telemetry; nothing was buffered or published.
  EXPECT_EQ(server.request_stats().snapshot().refit_failures, 2u);
  EXPECT_EQ(server.store().buffered_observations(), 0u);

  // REFIT with an empty buffer is a (trivial) success: warm refresh only.
  const auto empty = server.handle_line("REFIT pl");
  EXPECT_EQ(empty.text.rfind("OK refit pl ", 0), 0u) << empty.text;
  EXPECT_NE(empty.text.find("observations=0"), std::string::npos) << empty.text;
}

TEST(Server, GenerationSwapsStayBitwiseUnderConcurrentPredicts) {
  TempModelDir dir("swap");
  const std::string path = dir.save("pl", *fit_online());

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  options.cache_capacity = 64;  // small: swaps + evictions under load
  serve::Server server(options);

  constexpr std::size_t kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::string> failures[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(200 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto reply = server.handle_line(predict_line("pl", random_config(rng)));
        if (reply.text.rfind("OK ", 0) != 0) failures[c].push_back(reply.text);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Drive three full observe→refit cycles while the clients hammer away,
  // mirroring every call on an offline twin for the final bitwise check.
  // EXPECT (not ASSERT) inside this section: the client threads must join
  // before the test body may return.
  const common::RegressorPtr offline = core::load_model_file(path);
  Rng rng(51);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      const Config config = random_config(rng);
      const double seconds = shifted_truth(config);
      const auto reply = server.handle_line(observe_line("pl", config, seconds));
      EXPECT_EQ(reply.text.rfind("OK observed", 0), 0u) << reply.text;
      offline->observe(config, seconds);
    }
    const auto refit = server.handle_line("REFIT pl");
    EXPECT_EQ(refit.text.rfind("OK refit pl ", 0), 0u) << refit.text;
    offline->refresh();
  }
  stop.store(true);
  for (auto& client : clients) client.join();

  for (const auto& f : failures) {
    EXPECT_TRUE(f.empty()) << f.size() << " ERR replies, first: " << f.front();
  }
  EXPECT_GT(served.load(), 0u);

  // Every in-flight PREDICT rode some published generation; the final one
  // answers bitwise-identically to the offline replay.
  Rng probe_rng(52);
  for (int i = 0; i < 8; ++i) {
    const Config config = random_config(probe_rng);
    const auto reply = server.handle_line(predict_line("pl", config));
    ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
    EXPECT_EQ(std::stod(reply.text.substr(3)), offline->predict(config));
  }
  EXPECT_EQ(server.request_stats().snapshot().refits, 3u);
  EXPECT_EQ(server.request_stats().snapshot().errors, 0u);
}

// -------------------------------------------------------- TCP front end

/// Minimal blocking loopback client for the TCP front end: raw sends plus
/// newline- and binary-framed reads over one internal buffer.
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CPR_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    CPR_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
    int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  void send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }
  void send_line(const std::string& line) { send_raw(line + "\n"); }
  void send_frame(const std::string& payload) {
    send_raw(serve::encode_frame(payload));
  }

  /// Blocking read of one newline-framed reply (strips the newline);
  /// returns false on EOF.
  bool read_line(std::string& line) {
    std::size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      if (!fill()) return false;
    }
    line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return true;
  }

  /// Blocking read of one binary-framed reply; returns false on EOF.
  bool read_frame(std::string& payload) {
    for (;;) {
      if (buffer_.size() >= 4) {
        const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
        const std::uint32_t length = static_cast<std::uint32_t>(bytes[0]) |
                                     (static_cast<std::uint32_t>(bytes[1]) << 8) |
                                     (static_cast<std::uint32_t>(bytes[2]) << 16) |
                                     (static_cast<std::uint32_t>(bytes[3]) << 24);
        if (buffer_.size() >= 4u + length) {
          payload = buffer_.substr(4, length);
          buffer_.erase(0, 4u + length);
          return true;
        }
      }
      if (!fill()) return false;
    }
  }

  /// True once the server has closed the connection (drains the buffer).
  bool at_eof() {
    while (fill()) {
    }
    return true;  // fill() returned false: read() saw EOF
  }

  /// Negotiates binary framing and checks the ack comes in the old framing.
  void negotiate_binary() {
    send_line("FRAME BINARY");
    std::string ack;
    ASSERT_TRUE(read_line(ack));
    ASSERT_EQ(ack, "OK frame=binary");
  }

 private:
  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

/// A server over a fitted model directory plus its TCP front end.
struct TcpFixture {
  explicit TcpFixture(serve::TcpServerOptions tcp_options = {},
                      std::uint64_t batcher_max_wait_us = 50,
                      std::size_t cache_capacity = 64)
      : dir("tcp"), model(fit_family("cpr")) {
    dir.save("pl", *model);
    serve::ServerOptions options;
    options.model_dir = dir.path();
    options.batcher.workers = 2;
    options.batcher.max_wait_us = batcher_max_wait_us;
    options.cache_capacity = cache_capacity;
    server = std::make_unique<serve::Server>(options);
    tcp = std::make_unique<serve::TcpServer>(*server, tcp_options);
  }

  TempModelDir dir;
  common::RegressorPtr model;
  std::unique_ptr<serve::Server> server;
  std::unique_ptr<serve::TcpServer> tcp;
};

TEST(TcpServer, LoopbackSessionMatchesHandleLineBitwise) {
  TcpFixture fixture;
  // The reference server runs the same archives through handle_line —
  // exactly what the stdio and Unix-socket frontends write to a client.
  serve::ServerOptions reference_options;
  reference_options.model_dir = fixture.dir.path();
  reference_options.batcher.workers = 2;
  reference_options.batcher.max_wait_us = 50;
  serve::Server reference(reference_options);

  TcpClient client(fixture.tcp->port());
  std::vector<std::string> lines = {"LOAD pl"};
  Rng rng(21);
  for (std::size_t i = 0; i < 24; ++i) {
    const Config config = random_config(rng);
    std::ostringstream line;
    line.precision(17);
    line << "PREDICT pl " << config[0] << "," << config[1];
    lines.push_back(line.str());
  }
  lines.push_back("PREDICT nosuch 1,2");   // ERR replies must match too
  lines.push_back("PREDICT pl 1,2,3");
  lines.push_back("garbage");

  for (const auto& line : lines) {
    client.send_line(line);
    std::string reply;
    ASSERT_TRUE(client.read_line(reply)) << line;
    EXPECT_EQ(reply, reference.handle_line(line).text) << line;
  }
}

TEST(TcpServer, BinaryFramingMatchesNewlineReplies) {
  TcpFixture fixture;
  TcpClient newline_client(fixture.tcp->port());
  TcpClient binary_client(fixture.tcp->port());
  binary_client.negotiate_binary();

  Rng rng(33);
  for (std::size_t i = 0; i < 16; ++i) {
    const Config config = random_config(rng);
    std::ostringstream line;
    line.precision(17);
    line << "PREDICT pl " << config[0] << "," << config[1];
    newline_client.send_line(line.str());
    binary_client.send_frame(line.str());
    std::string newline_reply, binary_reply;
    ASSERT_TRUE(newline_client.read_line(newline_reply));
    ASSERT_TRUE(binary_client.read_frame(binary_reply));
    EXPECT_EQ(binary_reply, newline_reply) << line.str();
  }

  // Negotiating twice is an application-level ERR, not a framing violation:
  // the connection stays up.
  binary_client.send_frame("FRAME BINARY");
  std::string reply;
  ASSERT_TRUE(binary_client.read_frame(reply));
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
  binary_client.send_frame("PREDICT pl 100,100");
  ASSERT_TRUE(binary_client.read_frame(reply));
  EXPECT_EQ(reply.rfind("OK ", 0), 0u);
}

TEST(TcpServer, MalformedBinaryFramesGetErrThenCloseNeverDeath) {
  TcpFixture fixture;

  {  // zero-length frame: fatal framing violation
    TcpClient client(fixture.tcp->port());
    client.negotiate_binary();
    client.send_raw(std::string(4, '\0'));
    std::string reply;
    ASSERT_TRUE(client.read_frame(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
    EXPECT_TRUE(client.at_eof());
  }

  {  // oversize declared length: fatal before any payload arrives
    TcpClient client(fixture.tcp->port());
    client.negotiate_binary();
    const std::uint32_t huge = serve::kMaxFrameBytes + 1;
    std::string header(4, '\0');
    header[0] = static_cast<char>(huge & 0xff);
    header[1] = static_cast<char>((huge >> 8) & 0xff);
    header[2] = static_cast<char>((huge >> 16) & 0xff);
    header[3] = static_cast<char>((huge >> 24) & 0xff);
    client.send_raw(header);
    std::string reply;
    ASSERT_TRUE(client.read_frame(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
    EXPECT_TRUE(client.at_eof());
  }

  {  // truncated frame then close: the server just drops the connection
    TcpClient client(fixture.tcp->port());
    client.negotiate_binary();
    const std::string frame = serve::encode_frame("PREDICT pl 100,100");
    client.send_raw(frame.substr(0, frame.size() - 3));
  }

  {  // garbage payload inside a VALID frame: framed ERR, connection lives
    TcpClient client(fixture.tcp->port());
    client.negotiate_binary();
    client.send_frame("\x01\x02 not a protocol line \xff");
    std::string reply;
    ASSERT_TRUE(client.read_frame(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
    client.send_frame("PREDICT pl 100,100");
    ASSERT_TRUE(client.read_frame(reply));
    EXPECT_EQ(reply.rfind("OK ", 0), 0u);
  }

  // After every abuse above the front end still serves new clients.
  TcpClient survivor(fixture.tcp->port());
  survivor.send_line("PREDICT pl 100,100");
  std::string reply;
  ASSERT_TRUE(survivor.read_line(reply));
  EXPECT_EQ(reply.rfind("OK ", 0), 0u);
}

TEST(TcpServer, OversizeNewlineLineIsFatal) {
  serve::TcpServerOptions tcp_options;
  tcp_options.max_line_bytes = 128;
  TcpFixture fixture(tcp_options);
  TcpClient client(fixture.tcp->port());
  client.send_raw(std::string(256, 'x'));  // no newline within the limit
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
  EXPECT_TRUE(client.at_eof());
}

TEST(TcpServer, BusySheddingKeepsReplyOrderUnderSaturation) {
  serve::TcpServerOptions tcp_options;
  tcp_options.max_inflight = 2;  // tiny admission cap: shedding is certain
  // A slow batcher (5ms flush) with no cache keeps admitted requests
  // in flight long enough that a pipelined burst must overrun the cap.
  TcpFixture fixture(tcp_options, /*batcher_max_wait_us=*/5000,
                     /*cache_capacity=*/0);
  TcpClient client(fixture.tcp->port());

  constexpr std::size_t kBurst = 100;
  std::string burst;
  for (std::size_t i = 0; i < kBurst; ++i) {
    burst += "PREDICT pl 100," + std::to_string(100 + i) + "\n";
  }
  client.send_raw(burst);

  std::size_t ok = 0, busy = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::string reply;
    ASSERT_TRUE(client.read_line(reply)) << "reply " << i;
    if (reply == serve::kBusyReply) {
      ++busy;
    } else {
      ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
      ++ok;
    }
  }
  EXPECT_EQ(ok + busy, kBurst);
  EXPECT_GT(ok, 0u);    // the cap admits work, it does not starve
  EXPECT_GT(busy, 0u);  // and the overload was actually shed
  EXPECT_EQ(fixture.server->request_stats().snapshot().sheds, busy);
}

TEST(TcpServer, PartialWriteResumptionWithTinySndbuf) {
  serve::TcpServerOptions tcp_options;
  tcp_options.sndbuf = 1;  // kernel clamps to its floor; still forces
                           // many partial write() returns per reply
  TcpFixture fixture(tcp_options);
  TcpClient client(fixture.tcp->port());
  client.negotiate_binary();

  // Pipeline multi-kilobyte STATS replies without reading a byte, then
  // drain: every frame must arrive complete and in order.
  constexpr std::size_t kRequests = 50;
  for (std::size_t i = 0; i < kRequests; ++i) client.send_frame("STATS");
  for (std::size_t i = 0; i < kRequests; ++i) {
    std::string reply;
    ASSERT_TRUE(client.read_frame(reply)) << "reply " << i;
    EXPECT_NE(reply.find("predicts"), std::string::npos);
    EXPECT_EQ(reply.substr(reply.size() - 2), "OK");
  }
}

TEST(TcpServer, QuitClosesOnlyItsOwnConnection) {
  TcpFixture fixture;
  TcpClient quitter(fixture.tcp->port());
  TcpClient bystander(fixture.tcp->port());

  std::string reply;
  bystander.send_line("PREDICT pl 100,100");
  ASSERT_TRUE(bystander.read_line(reply));
  const std::string expected = reply;

  quitter.send_line("QUIT");
  ASSERT_TRUE(quitter.read_line(reply));
  EXPECT_EQ(reply, "OK bye");
  EXPECT_TRUE(quitter.at_eof());

  // The other connection — and the whole front end — keeps serving.
  bystander.send_line("PREDICT pl 100,100");
  ASSERT_TRUE(bystander.read_line(reply));
  EXPECT_EQ(reply, expected);
  TcpClient fresh(fixture.tcp->port());
  fresh.send_line("PREDICT pl 100,100");
  ASSERT_TRUE(fresh.read_line(reply));
  EXPECT_EQ(reply, expected);
}

TEST(TcpServer, DrainShutdownFlushesInflightReplies) {
  // 100ms batch flush: the reply is guaranteed still in flight when the
  // drain starts, so it must be completed and flushed by the drain.
  TcpFixture fixture({}, /*batcher_max_wait_us=*/100'000, /*cache_capacity=*/0);
  TcpClient client(fixture.tcp->port());
  client.send_line("PREDICT pl 100,100");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // parsed+dispatched
  fixture.tcp->shutdown(/*drain=*/true);
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(reply, serve::format_prediction(fixture.model->predict({100.0, 100.0})));
  EXPECT_TRUE(client.at_eof());
}

// ---------------------------------------------------------- observability

TEST(Server, MetricsVerbRendersValidExposition) {
  TempModelDir dir("metrics");
  dir.save("pl", *fit_family("cpr"));
  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.max_wait_us = 50;
  serve::Server server(options);

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(server.handle_line("PREDICT pl 100,200").text.rfind("OK ", 0), 0u);
  }
  server.handle_line("PREDICT nosuch 1,2");  // one error

  const auto reply = server.handle_line("METRICS");
  ASSERT_GE(reply.text.size(), 2u);
  EXPECT_EQ(reply.text.substr(reply.text.size() - 2), "OK");
  EXPECT_FALSE(reply.quit);

  const std::string exposition = reply.text.substr(0, reply.text.size() - 2);
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(exposition, &error)) << error;
  EXPECT_NE(exposition.find("cpr_predicts_total 5"), std::string::npos);
  EXPECT_NE(exposition.find("cpr_request_errors_total 1"), std::string::npos);
  EXPECT_NE(exposition.find("# TYPE cpr_request_latency_seconds histogram"),
            std::string::npos);
  // Cache callbacks: the repeated PREDICT missed once, then hit 4 times
  // (the unknown-model request fails before it touches the cache).
  EXPECT_NE(exposition.find("cpr_cache_hits_total 4"), std::string::npos);
  EXPECT_NE(exposition.find("cpr_cache_misses_total 1"), std::string::npos);
  // Direct render and the verb agree (modulo samples recorded in between).
  EXPECT_NE(server.metrics_text().find("cpr_predicts_total"), std::string::npos);
}

TEST(Server, StatsHistogramPercentilesAreReproducible) {
  TempModelDir dir("reprod");
  dir.save("pl", *fit_family("cpr"));
  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.max_wait_us = 50;
  serve::Server server(options);
  for (int i = 0; i < 32; ++i) {
    server.handle_line("PREDICT pl 100," + std::to_string(100 + i));
  }
  // Percentiles are a pure function of the exact bucket counts: reading
  // them twice — or merging snapshot copies in any order — cannot differ.
  const auto first = server.request_stats().snapshot();
  const auto second = server.request_stats().snapshot();
  EXPECT_EQ(first.p50_seconds, second.p50_seconds);
  EXPECT_EQ(first.p99_seconds, second.p99_seconds);
  EXPECT_EQ(first.p999_seconds, second.p999_seconds);

  const auto snap = server.request_stats().request_latency().snapshot();
  auto merged = snap;
  merged.merge(snap);  // doubled counts: same nearest-rank boundaries
  EXPECT_EQ(merged.count(), 2 * snap.count());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(merged.percentile(q), snap.percentile(q));
  }
}

TEST(Server, TraceSamplingCapturesSpanTaxonomy) {
  TempModelDir dir("trace");
  dir.save("pl", *fit_family("cpr"));
  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.max_wait_us = 50;
  options.trace_sample = 1;
  serve::Server server(options);

  ASSERT_EQ(server.handle_line("PREDICT pl 100,200").text.rfind("OK ", 0), 0u);
  ASSERT_EQ(server.handle_line("PREDICT pl 100,200").text.rfind("OK ", 0), 0u);
  EXPECT_EQ(server.traces().collected(), 2u);

  const std::string json = server.traces().render_chrome_json();
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  // First request: cache miss through the batcher; second: cache hit.
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"handle\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"batch_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"predict\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"hit\""), std::string::npos);
  EXPECT_NE(json.find("\"model\":\"pl\""), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"PREDICT\""), std::string::npos);
}

TEST(Server, TraceSamplingOffCollectsNothing) {
  TempModelDir dir("notrace");
  dir.save("pl", *fit_family("cpr"));
  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.max_wait_us = 50;
  serve::Server server(options);  // trace_sample defaults to 0

  for (int i = 0; i < 8; ++i) server.handle_line("PREDICT pl 100,200");
  EXPECT_EQ(server.traces().collected(), 0u);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(server.traces().render_chrome_json(), &error))
      << error;
}

TEST(TcpServer, TracedRequestsCarryAdmissionAndFlushSpans) {
  TcpFixture fixture;
  fixture.server->traces().set_sample_every(1);
  TcpClient client(fixture.tcp->port());
  std::string reply;
  for (int i = 0; i < 4; ++i) {
    client.send_line("PREDICT pl 100," + std::to_string(100 + i));
    ASSERT_TRUE(client.read_line(reply));
    ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  }
  // read_line returning means the reply was flushed, which is also where
  // the trace is finished — no extra synchronization needed here.
  EXPECT_EQ(fixture.server->traces().collected(), 4u);
  const std::string json = fixture.server->traces().render_chrome_json();
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &error)) << error;
  EXPECT_NE(json.find("\"name\":\"admission_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);

  // Stage histograms cover every dispatched request, sampled or not.
  EXPECT_EQ(fixture.server->stats().admission_wait().snapshot().count(), 4u);
  EXPECT_EQ(fixture.server->stats().flush_time().snapshot().count(), 4u);
}

TEST(Server, ConcurrentMetricsAndStatsWithTraffic) {
  // Hammers the exposition/stats render paths while PREDICT traffic records
  // into the same counters and histograms: the lock-free registry must hold
  // up under --tsan (this test is in the sanitizer serve suite).
  TempModelDir dir("hammer");
  dir.save("pl", *fit_family("cpr"));
  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.max_wait_us = 50;
  options.trace_sample = 2;
  serve::Server server(options);

  constexpr std::size_t kTraffic = 4;
  constexpr std::size_t kRequests = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTraffic; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        const auto reply = server.handle_line(
            "PREDICT pl 100," + std::to_string(100 + (t * kRequests + i) % 32));
        ASSERT_EQ(reply.text.rfind("OK ", 0), 0u) << reply.text;
      }
    });
  }
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < 32; ++i) {
      const auto reply = server.handle_line("METRICS");
      ASSERT_EQ(reply.text.substr(reply.text.size() - 2), "OK");
      std::string error;
      ASSERT_TRUE(obs::validate_prometheus_text(
          reply.text.substr(0, reply.text.size() - 2), &error))
          << error;
    }
  });
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < 32; ++i) {
      ASSERT_NE(server.handle_line("STATS").text.find("predicts"), std::string::npos);
      server.traces().render_chrome_json();
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(server.request_stats().snapshot().predicts, kTraffic * kRequests);
  EXPECT_EQ(server.request_stats().snapshot().errors, 0u);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(server.traces().render_chrome_json(), &error))
      << error;
}

TEST(TcpServer, ConnectionGaugeTracksOpenSockets) {
  TcpFixture fixture;
  auto connections = [&] {
    return fixture.server->request_stats().snapshot().connections;
  };
  EXPECT_EQ(connections(), 0);
  {
    TcpClient a(fixture.tcp->port());
    TcpClient b(fixture.tcp->port());
    // The gauge updates when the loop registers/unregisters the socket.
    std::string reply;
    a.send_line("PREDICT pl 100,100");
    ASSERT_TRUE(a.read_line(reply));
    b.send_line("PREDICT pl 100,100");
    ASSERT_TRUE(b.read_line(reply));
    EXPECT_EQ(connections(), 2);
  }
  for (int i = 0; i < 200 && connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(connections(), 0);
}

}  // namespace
}  // namespace cpr
