// Tests for the synthetic benchmark apps: Table-2 parameter spaces,
// sampling rules, constraints, determinism, noise statistics, and the
// scaling properties the cost models must exhibit.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {
namespace {

TEST(Registry, AllSixAppsPresent) {
  const auto apps = make_all_apps();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0]->name(), "MM");
  EXPECT_EQ(apps[1]->name(), "QR");
  EXPECT_EQ(apps[2]->name(), "BC");
  EXPECT_EQ(apps[3]->name(), "FMM");
  EXPECT_EQ(apps[4]->name(), "AMG");
  EXPECT_EQ(apps[5]->name(), "KRIPKE");
}

TEST(Registry, Table2Dimensionality) {
  const auto apps = make_all_apps();
  EXPECT_EQ(apps[0]->dimensions(), 3u);  // MM: m, n, k
  EXPECT_EQ(apps[1]->dimensions(), 2u);  // QR: m, n
  EXPECT_EQ(apps[2]->dimensions(), 3u);  // BC: nodes, ppn, msg
  EXPECT_EQ(apps[3]->dimensions(), 6u);  // FMM
  EXPECT_EQ(apps[4]->dimensions(), 8u);  // AMG
  EXPECT_EQ(apps[5]->dimensions(), 9u);  // KRIPKE
}

TEST(Registry, SampleRulesMatchParameterArity) {
  for (const auto& app : make_all_apps()) {
    EXPECT_EQ(app->sample_rules().size(), app->parameters().size()) << app->name();
  }
}

TEST(Registry, AmgCategoricalSpaces) {
  const auto amg = make_amg();
  const auto& params = amg->parameters();
  EXPECT_EQ(params[5].categories, 7u);   // coarsening
  EXPECT_EQ(params[6].categories, 10u);  // relaxation
  EXPECT_EQ(params[7].categories, 14u);  // interpolation
}

TEST(Registry, KripkeCategoricalSpaces) {
  const auto kripke = make_kripke();
  const auto& params = kripke->parameters();
  EXPECT_EQ(params[5].categories, 6u);  // layouts
  EXPECT_EQ(params[6].categories, 2u);  // solvers
}

class AllApps : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::unique_ptr<BenchmarkApp> app_ = [] {
    auto apps = make_all_apps();
    return std::move(apps[0]);
  }();

  void SetUp() override {
    auto apps = make_all_apps();
    app_ = std::move(apps[GetParam()]);
  }
};

TEST_P(AllApps, SamplesStayInBoundsAndSatisfyConstraints) {
  Rng rng(1);
  const auto& params = app_->parameters();
  for (int trial = 0; trial < 500; ++trial) {
    const auto x = app_->sample_config(rng);
    ASSERT_EQ(x.size(), params.size());
    for (std::size_t j = 0; j < params.size(); ++j) {
      if (params[j].kind == grid::ParameterKind::Categorical) {
        EXPECT_GE(x[j], 0.0);
        EXPECT_LT(x[j], static_cast<double>(params[j].categories));
      } else {
        EXPECT_GE(x[j], params[j].lo);
        EXPECT_LE(x[j], params[j].hi);
        if (params[j].integral) {
          EXPECT_DOUBLE_EQ(x[j], std::round(x[j]));
        }
      }
    }
    EXPECT_TRUE(app_->satisfies_constraints(x));
  }
}

TEST_P(AllApps, BaseTimePositiveAndFinite) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto x = app_->sample_config(rng);
    const double t = app_->base_time(x);
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
    // Sanity: single-node benchmark times should land between 100 ns and 1 hour.
    EXPECT_GT(t, 1e-7);
    EXPECT_LT(t, 3600.0);
  }
}

TEST_P(AllApps, ExecuteDeterministicPerRunId) {
  Rng rng(3);
  const auto x = app_->sample_config(rng);
  EXPECT_DOUBLE_EQ(app_->execute(x, 5), app_->execute(x, 5));
  EXPECT_NE(app_->execute(x, 5), app_->execute(x, 6));
}

TEST_P(AllApps, NoiseIsUnbiasedMultiplicative) {
  Rng rng(4);
  const auto x = app_->sample_config(rng);
  const double base = app_->base_time(x);
  double sum = 0.0;
  const int runs = 4000;
  for (int r = 0; r < runs; ++r) sum += app_->execute(x, static_cast<std::uint64_t>(r));
  EXPECT_NEAR(sum / runs / base, 1.0, 0.05);
}

TEST_P(AllApps, DatasetGenerationDeterministic) {
  const auto a = app_->generate_dataset(64, 99);
  const auto b = app_->generate_dataset(64, 99);
  EXPECT_EQ(linalg::max_abs_diff(a.x, b.x), 0.0);
  EXPECT_EQ(a.y, b.y);
  const auto c = app_->generate_dataset(64, 100);
  EXPECT_NE(a.y, c.y);
}

TEST_P(AllApps, DatasetValuesPositive) {
  const auto data = app_->generate_dataset(128, 5);
  EXPECT_EQ(data.size(), 128u);
  for (const double y : data.y) EXPECT_GT(y, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Apps, AllApps, ::testing::Range<std::size_t>(0, 6));

TEST(MatMul, CubicFlopScaling) {
  const auto mm = make_matmul();
  // Doubling all three dimensions at large sizes ~ 8x time.
  const double t1 = mm->base_time({1024, 1024, 1024});
  const double t2 = mm->base_time({2048, 2048, 2048});
  EXPECT_NEAR(t2 / t1, 8.0, 1.6);
}

TEST(MatMul, MonotoneInEachDimension) {
  const auto mm = make_matmul();
  for (const std::size_t dim : {0u, 1u, 2u}) {
    grid::Config x{256, 256, 256};
    const double before = mm->base_time(x);
    x[dim] = 512;
    EXPECT_GT(mm->base_time(x), before);
  }
}

TEST(Qr, ConstraintEnforcesTallMatrices) {
  const auto qr = make_qr_factorization();
  EXPECT_TRUE(qr->satisfies_constraints({1000, 100}));
  EXPECT_FALSE(qr->satisfies_constraints({100, 1000}));
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = qr->sample_config(rng);
    EXPECT_GE(x[0], x[1]);
  }
}

TEST(Qr, FlopScalingQuadraticInN) {
  const auto qr = make_qr_factorization();
  const double t1 = qr->base_time({100000, 512});
  const double t2 = qr->base_time({100000, 1024});
  EXPECT_GT(t2 / t1, 2.5);  // ~ n^2 with bandwidth terms
}

TEST(Broadcast, LatencyVsBandwidthRegimes) {
  const auto bc = make_broadcast();
  // Small message: near latency bound; scaling with nodes only logarithmic.
  const double small_8 = bc->base_time({8, 1, 65536});
  const double small_64 = bc->base_time({64, 1, 65536});
  EXPECT_LT(small_64 / small_8, 3.0);
  // Large message: bandwidth bound; nearly independent of node count.
  const double large_8 = bc->base_time({8, 1, 1 << 26});
  const double large_64 = bc->base_time({64, 1, 1 << 26});
  EXPECT_LT(large_64 / large_8, 2.0);
  EXPECT_GT(large_8, small_8);
}

TEST(Broadcast, MessageSizeMonotone) {
  const auto bc = make_broadcast();
  double previous = 0.0;
  for (double bytes = 65536; bytes <= (1 << 26); bytes *= 4) {
    const double t = bc->base_time({16, 16, bytes});
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(ExaFmm, PplTradeoffIsNonMonotone) {
  // P2P grows and M2L shrinks with ppl: the total must have an interior
  // minimum for some configuration (the classic FMM U-curve).
  const auto fmm = make_exafmm();
  const grid::Config base{32768, 10, 2, 48, 0, 2};  // n, ord, tpp, ppn, ppl, tl
  std::vector<double> times;
  for (const double ppl : {32.0, 64.0, 128.0, 256.0}) {
    grid::Config x = base;
    x[4] = ppl;
    times.push_back(fmm->base_time(x));
  }
  const double min_time = *std::min_element(times.begin(), times.end());
  EXPECT_LT(min_time, times.front());
  EXPECT_LT(min_time, times.back());
}

TEST(ExaFmm, CoreConstraintHolds) {
  const auto fmm = make_exafmm();
  EXPECT_FALSE(fmm->satisfies_constraints({8192, 6, 1, 1, 64, 1}));   // 1 core
  EXPECT_TRUE(fmm->satisfies_constraints({8192, 6, 2, 48, 64, 1}));   // 96
  EXPECT_FALSE(fmm->satisfies_constraints({8192, 6, 64, 64, 64, 1})); // 4096
}

TEST(ExaFmm, OrderIncreasesM2lCost) {
  const auto fmm = make_exafmm();
  const double low = fmm->base_time({32768, 4, 2, 48, 64, 2});
  const double high = fmm->base_time({32768, 15, 2, 48, 64, 2});
  EXPECT_GT(high, 2.0 * low);
}

TEST(Amg, CategoricalChoicesChangeRuntime) {
  const auto amg = make_amg();
  const grid::Config base{64, 64, 64, 2, 48, 0, 0, 0};
  std::set<double> distinct;
  for (std::size_t ct = 0; ct < 7; ++ct) {
    grid::Config x = base;
    x[5] = static_cast<double>(ct);
    distinct.insert(amg->base_time(x));
  }
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(Amg, ProblemSizeScaling) {
  const auto amg = make_amg();
  const double t1 = amg->base_time({32, 32, 32, 2, 48, 0, 0, 0});
  const double t2 = amg->base_time({64, 64, 64, 2, 48, 0, 0, 0});
  // ~ linear in grid points (8x), modulated by the per-octave texture bands.
  EXPECT_GT(t2 / t1, 4.0);
  EXPECT_LT(t2 / t1, 16.0);
}

TEST(Kripke, SolverChoiceTradesBaseCostForScaling) {
  const auto kripke = make_kripke();
  // groups, legendre, quad, tpp, ppn, layout, solver, dset, gset
  const grid::Config sweep{64, 2, 64, 2, 48, 0, 0, 16, 4};
  grid::Config bj = sweep;
  bj[6] = 1;
  // Block-Jacobi costs more per iteration at this core count...
  EXPECT_GT(kripke->base_time(bj), kripke->base_time(sweep) * 0.7);
  // ...but its advantage grows relative to sweep as cores grow.
  grid::Config sweep_hi = sweep, bj_hi = bj;
  sweep_hi[3] = 2;  sweep_hi[4] = 64;  // 128 cores
  bj_hi[3] = 2;     bj_hi[4] = 64;
  const double ratio_lo = kripke->base_time(bj) / kripke->base_time(sweep);
  const double ratio_hi = kripke->base_time(bj_hi) / kripke->base_time(sweep_hi);
  EXPECT_LT(ratio_hi, ratio_lo);
}

TEST(Kripke, BlockingUShape) {
  const auto kripke = make_kripke();
  grid::Config x{64, 2, 64, 2, 48, 0, 0, 16, 4};
  const double at_16 = kripke->base_time(x);
  x[7] = 8;
  const double at_8 = kripke->base_time(x);
  x[7] = 64;
  const double at_64 = kripke->base_time(x);
  EXPECT_LT(at_16, at_8);
  EXPECT_LT(at_16, at_64);
}

TEST(DatasetGen, BoundsOverrideRestrictsRange) {
  const auto mm = make_matmul();
  std::vector<std::optional<std::pair<double, double>>> bounds(3);
  bounds[0] = {32.0, 256.0};
  const auto data = mm->generate_dataset(200, 7, &bounds);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(data.x(i, 0), 256.0);
    EXPECT_GE(data.x(i, 0), 32.0);
    EXPECT_LE(data.x(i, 1), 4096.0);  // other dims keep full range
  }
}

TEST(DatasetGen, KernelAveragingReducesVariance) {
  // MM averages 50 runs; its measured value should be much closer to base
  // time than a single noisy run.
  const auto mm = make_matmul();
  Rng rng(8);
  const auto x = mm->sample_config(rng);
  const double base = mm->base_time(x);
  const double measured = mm->measure(x, 1);
  EXPECT_NEAR(measured / base, 1.0, 0.05);
}

TEST(DatasetGen, LogUniformSamplingCoversDecades) {
  // With log-uniform sampling of m in [32, 4096], about half the samples
  // fall below the geometric mean 362.
  const auto mm = make_matmul();
  const auto data = mm->generate_dataset(2000, 9);
  std::size_t below = 0;
  for (std::size_t i = 0; i < data.size(); ++i) below += data.x(i, 0) < 362.0;
  EXPECT_NEAR(static_cast<double>(below) / 2000.0, 0.5, 0.06);
}

}  // namespace
}  // namespace cpr::apps
