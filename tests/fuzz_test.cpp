// Fuzz-style robustness tests: deterministic pseudo-random, mutated and
// truncated inputs thrown at every text-facing surface — the serve protocol
// parser, a full Server session, the model archive loader, the tuner's
// --space axis grammar, and registry hyper values. The contract everywhere
// is total parsing: clean CheckError (or an ERR reply), never a crash, hang
// or foreign exception. The suite runs under ASan/UBSan via
// `tools/verify.sh --sanitize`, which is where memory bugs on these paths
// would surface.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_data.hpp"
#include "tune/search_space.hpp"
#include "tune/tuner.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::ModelRegistry;
using testdata::TempModelDir;

/// Random byte string (full 0..255 range, so embedded NULs, control bytes
/// and invalid UTF-8 are all exercised).
std::string random_bytes(Rng& rng, std::size_t max_length) {
  const auto length = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_length)));
  std::string bytes(length, '\0');
  for (auto& byte : bytes) byte = static_cast<char>(rng.uniform_int(0, 255));
  return bytes;
}

/// Asserts that fn(input) either succeeds or throws CheckError — nothing
/// else may escape.
template <typename Fn>
void expect_total(Fn&& fn, const std::string& input, const char* surface) {
  try {
    fn(input);
  } catch (const CheckError&) {
    // The documented failure mode.
  } catch (const std::exception& e) {
    FAIL() << surface << " leaked a foreign exception for input '" << input
           << "': " << e.what();
  }
}

// --------------------------------------------------------------- protocol

TEST(ProtocolFuzz, RandomLinesNeverCrashTheParser) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    expect_total([](const std::string& line) { serve::parse_request(line); },
                 random_bytes(rng, 64), "parse_request");
  }
}

TEST(ProtocolFuzz, TruncatedAndMutatedValidLinesNeverCrash) {
  const std::string valid[] = {
      "PREDICT mm 1024,512,8", "OBSERVE mm 1024,512,8 0.25", "REFIT mm",
      "LOAD mm",               "UNLOAD mm",                  "STATS",
      "QUIT",
  };
  // Every prefix of every valid line (truncated mid-token, mid-number, ...).
  for (const auto& line : valid) {
    for (std::size_t cut = 0; cut <= line.size(); ++cut) {
      expect_total([](const std::string& l) { serve::parse_request(l); },
                   line.substr(0, cut), "parse_request");
    }
  }
  // Random single-byte mutations.
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string line = valid[static_cast<std::size_t>(rng.uniform_int(0, 6))];
    const auto pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
    line[pos] = static_cast<char>(rng.uniform_int(0, 255));
    expect_total([](const std::string& l) { serve::parse_request(l); }, line,
                 "parse_request");
  }
}

TEST(ProtocolFuzz, BinaryFrameDecoderIsTotalOnRandomBytes) {
  // Random byte streams fed in random-sized chunks: the decoder must either
  // produce frames, wait for more bytes, or throw CheckError — and once it
  // has thrown (the stream is unsynchronisable) it must stay poisoned.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    serve::FrameDecoder decoder;
    std::string stream = random_bytes(rng, 256);
    bool poisoned = false;
    while (!stream.empty()) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(stream.size())));
      decoder.feed(std::string_view(stream).substr(0, chunk));
      stream.erase(0, chunk);
      try {
        std::string payload;
        while (decoder.next(payload)) {
          EXPECT_LE(payload.size(), serve::kMaxFrameBytes);
        }
        EXPECT_FALSE(poisoned) << "a poisoned decoder must keep throwing";
      } catch (const CheckError&) {
        poisoned = true;
      }
    }
  }
}

TEST(ProtocolFuzz, TruncatedAndMutatedValidFramesNeverCrash) {
  const std::string frames[] = {
      serve::encode_frame("PREDICT mm 1024,512,8"),
      serve::encode_frame("STATS"),
      serve::encode_frame(std::string(1000, 'x')),
  };
  // Every truncation point of a valid frame: the decoder must simply wait.
  for (const auto& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      serve::FrameDecoder decoder;
      decoder.feed(std::string_view(frame).substr(0, cut));
      std::string payload;
      EXPECT_FALSE(decoder.next(payload)) << "cut=" << cut;
    }
  }
  // Single-byte mutations (mostly of the length prefix): total behaviour.
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    std::string frame = frames[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    frame[pos] = static_cast<char>(rng.uniform_int(0, 255));
    serve::FrameDecoder decoder;
    decoder.feed(frame);
    try {
      std::string payload;
      while (decoder.next(payload)) {
      }
    } catch (const CheckError&) {
      // Declared-length violations are the documented failure mode.
    }
  }
}

TEST(ServerFuzz, RandomSessionsAlwaysGetOkOrErrReplies) {
  TempModelDir dir("fuzz_server");
  auto model = ModelRegistry::instance().create("knn", testdata::zoo_spec("knn"));
  model->fit(testdata::sample_noisy_power_law(128, 7));
  dir.save("pl", *model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  serve::Server server(options);

  Rng rng(3);
  std::size_t ok_replies = 0;
  for (int i = 0; i < 600; ++i) {
    // Interleave garbage with valid traffic so the session stays healthy
    // in between malformed lines.
    std::string line;
    if (i % 5 == 0) {
      line = "PREDICT pl 100,200";
    } else {
      line = random_bytes(rng, 48);
    }
    const auto reply = server.handle_line(line);  // contract: never throws
    ASSERT_FALSE(reply.text.empty());
    const bool ok = reply.text.rfind("OK", 0) == 0;
    const bool err = reply.text.rfind("ERR ", 0) == 0;
    EXPECT_TRUE(ok || err) << "unexpected reply '" << reply.text << "'";
    if (ok) ++ok_replies;
    ASSERT_FALSE(reply.quit);  // random bytes must not terminate the session
  }
  EXPECT_GE(ok_replies, 120u);  // the interleaved valid PREDICTs all served
  EXPECT_EQ(server.handle_line("PREDICT pl 100,200").text.rfind("OK ", 0), 0u);
}

TEST(ServerFuzz, ObserveRefitTrafficIsTotal) {
  // The online-learning verbs under hostile traffic: valid OBSERVE/REFIT/
  // PREDICT interleaved with single-byte mutants of an OBSERVE line. Every
  // reply must be OK or ERR; a small buffer exercises the overflow path.
  TempModelDir dir("fuzz_observe");
  auto model =
      ModelRegistry::instance().create("cpr-online", testdata::zoo_spec("cpr-online"));
  model->fit(testdata::sample_noisy_power_law(128, 7));
  dir.save("ol", *model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 1;
  options.observe_buffer = 32;
  serve::Server server(options);

  Rng rng(5);
  std::size_t ok_replies = 0;
  for (int i = 0; i < 400; ++i) {
    std::string line = "OBSERVE ol 100,200 0.25";
    switch (i % 6) {
      case 0: break;
      case 1: line = "PREDICT ol 100,200"; break;
      case 2: line = "REFIT ol"; break;
      default: {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
        line[pos] = static_cast<char>(rng.uniform_int(0, 255));
        break;
      }
    }
    const auto reply = server.handle_line(line);
    ASSERT_FALSE(reply.text.empty());
    const bool ok = reply.text.rfind("OK", 0) == 0;
    const bool err = reply.text.rfind("ERR ", 0) == 0;
    EXPECT_TRUE(ok || err) << "unexpected reply '" << reply.text << "'";
    if (ok) ++ok_replies;
    ASSERT_FALSE(reply.quit);
  }
  EXPECT_GE(ok_replies, 200u);  // all the unmutated traffic served
  EXPECT_EQ(server.handle_line("PREDICT ol 100,200").text.rfind("OK ", 0), 0u);
}

TEST(ServerFuzz, MetricsVerbStaysValidThroughHostileTraffic) {
  // The METRICS exposition and the trace serializer must stay well-formed
  // no matter what garbage the session mixed in before them.
  TempModelDir dir("fuzz_metrics");
  auto model = ModelRegistry::instance().create("knn", testdata::zoo_spec("knn"));
  model->fit(testdata::sample_noisy_power_law(128, 11));
  dir.save("pl", *model);

  serve::ServerOptions options;
  options.model_dir = dir.path();
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  options.trace_sample = 1;
  serve::Server server(options);

  Rng rng(12);
  for (int i = 0; i < 300; ++i) {
    std::string line;
    if (i % 7 == 0) {
      line = "PREDICT pl 100,200";
    } else if (i % 7 == 3) {
      line = "METRICS";
    } else {
      line = random_bytes(rng, 48);
    }
    const auto reply = server.handle_line(line);
    ASSERT_FALSE(reply.text.empty());
    if (line == "METRICS") {
      ASSERT_EQ(reply.text.substr(reply.text.size() - 2), "OK");
      std::string error;
      ASSERT_TRUE(obs::validate_prometheus_text(
          reply.text.substr(0, reply.text.size() - 2), &error))
          << "iteration " << i << ": " << error;
    }
  }
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(server.traces().render_chrome_json(), &error))
      << error;
}

// ------------------------------------------------------------------ trace

TEST(TraceFuzz, SerializerIsTotalOverRandomSpans) {
  // Arbitrary bytes in names/args/timestamps must always render to JSON the
  // structural validator accepts (escaping is total, end < start clamps).
  Rng rng(13);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::vector<obs::ChromeEvent> events;
    const auto count = static_cast<std::size_t>(rng.uniform_int(0, 20));
    for (std::size_t i = 0; i < count; ++i) {
      obs::ChromeEvent event;
      event.name = random_bytes(rng, 24);
      event.tid = static_cast<std::uint64_t>(rng.uniform_int(0, 3));
      event.start_ns = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
      event.end_ns = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
      const auto args = static_cast<std::size_t>(rng.uniform_int(0, 3));
      for (std::size_t a = 0; a < args; ++a) {
        event.args.emplace_back(random_bytes(rng, 12), random_bytes(rng, 12));
      }
      events.push_back(std::move(event));
    }
    const std::string json = obs::render_chrome_events(std::move(events));
    std::string error;
    ASSERT_TRUE(obs::validate_chrome_trace(json, &error))
        << "iteration " << iteration << ": " << error << "\n" << json;
  }
}

TEST(TraceFuzz, ValidatorIsTotalOnRandomDocuments) {
  // The validator itself must never crash on arbitrary bytes — it reads
  // untrusted files in cpr_obscheck.
  Rng rng(14);
  std::string error;
  for (int i = 0; i < 3000; ++i) {
    obs::validate_chrome_trace(random_bytes(rng, 128), &error);
    obs::validate_prometheus_text(random_bytes(rng, 128), &error);
  }
  // Mutations of a valid document exercise deeper parser states.
  const std::string valid =
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":3,"
      "\"ts\":10.500,\"dur\":2.000,\"args\":{\"k\":\"v\"}}]}";
  for (int i = 0; i < 2000; ++i) {
    std::string doc = valid;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    doc[pos] = static_cast<char>(rng.uniform_int(0, 255));
    obs::validate_chrome_trace(doc, &error);
  }
}

// ---------------------------------------------------------------- archive

TEST(ArchiveFuzz, RandomBytesAndTruncationsRejectedCleanly) {
  const auto path = testdata::temp_path("cpr_fuzz_archive.cprm");
  Rng rng(4);

  // Pure random files (some with the right magic prefix to get past the
  // header check into body parsing).
  for (int i = 0; i < 300; ++i) {
    std::string bytes = random_bytes(rng, 256);
    if (i % 3 == 0) bytes = "CPRARCH1" + bytes;
    if (i % 7 == 0) bytes = "CPRMODL1" + bytes;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                 "load_model_file");
  }

  // Truncations and single-byte corruptions of a genuine archive.
  auto model = ModelRegistry::instance().create("cpr", testdata::zoo_spec("cpr"));
  model->fit(testdata::sample_noisy_power_law(192, 8));
  core::save_model_file(*model, path);
  std::vector<char> archive(std::filesystem::file_size(path));
  {
    std::ifstream in(path, std::ios::binary);
    in.read(archive.data(), static_cast<std::streamsize>(archive.size()));
  }
  for (int i = 0; i < 60; ++i) {
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(archive.size()) - 1));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(archive.data(), static_cast<std::streamsize>(cut));
    }
    expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                 "load_model_file (truncated)");
  }
  for (int i = 0; i < 120; ++i) {
    std::vector<char> corrupt = archive;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size()) - 1));
    corrupt[pos] = static_cast<char>(rng.uniform_int(0, 255));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    // A flipped payload byte may still deserialize (e.g. a mantissa bit);
    // anything else must be a CheckError.
    expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                 "load_model_file (corrupted)");
  }
  std::filesystem::remove(path);
}

TEST(ArchiveFuzz, QuantizedPayloadsRejectedCleanlyUnderMutation) {
  // The v2 (quantized) archive surface: block tags, per-column scale/offset
  // words, and tensor lengths are all new parsing territory, so corruptions
  // there must fail as cleanly as the v1 paths above. One sweep per lossy
  // encoding, since they take different branches in read_quantized_block.
  const auto path = testdata::temp_path("cpr_fuzz_quant_archive.cprm");
  auto model = ModelRegistry::instance().create("cpr", testdata::zoo_spec("cpr"));
  model->fit(testdata::sample_noisy_power_law(192, 8));
  Rng rng(15);
  for (const QuantMode mode : {QuantMode::F32, QuantMode::F16, QuantMode::I8}) {
    core::save_model_file(*model, path, mode);
    std::vector<char> archive(std::filesystem::file_size(path));
    {
      std::ifstream in(path, std::ios::binary);
      in.read(archive.data(), static_cast<std::streamsize>(archive.size()));
    }
    const auto write = [&](const std::vector<char>& bytes, std::size_t n) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(n));
    };
    // Every-truncation sweep hits mid-header, mid-scale-block and
    // mid-tensor cuts without needing to know the offsets.
    for (std::size_t cut = 0; cut < archive.size();
         cut += 1 + cut / 16) {  // dense early (headers), sparser in the bulk
      write(archive, cut);
      expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                   "load_model_file (truncated quantized)");
    }
    // Random single-byte corruptions across the whole archive (tag bytes,
    // scale/offset words, codes, lengths — whatever the offset lands on).
    for (int i = 0; i < 150; ++i) {
      std::vector<char> corrupt = archive;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size()) - 1));
      corrupt[pos] = static_cast<char>(rng.uniform_int(0, 255));
      write(corrupt, corrupt.size());
      expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                   "load_model_file (corrupted quantized)");
    }
    // Targeted: the version-2 quant-mode byte itself, set to every value.
    // It sits right after the "cpr" tag string + version u64 in the body.
    const std::size_t mode_offset = 8 + 8       // magic + body size
                                    + 8 + 3     // tag length + "cpr"
                                    + 8;        // version
    ASSERT_LT(mode_offset, archive.size());
    for (int v = 0; v < 256; ++v) {
      std::vector<char> corrupt = archive;
      corrupt[mode_offset] = static_cast<char>(v);
      write(corrupt, corrupt.size());
      expect_total([](const std::string& p) { core::load_model_file(p); }, path,
                   "load_model_file (mode byte)");
    }
  }
  std::filesystem::remove(path);
}

// -------------------------------------------------- tuner / search space

TEST(TunerFuzz, MalformedAxisStringsRejectedCleanly) {
  const char* malformed[] = {
      "=1|2",        "k=",          "k=1..",      "k=..2",
      "k=2..1",      "k=1..2:bogus", "k=a..b",     "k=1|",       "k=|",
      "k=1||2",      "lambda=0..1:log", "k=1.5..2.5:int", "k=nan..2",
      "k=1..inf",    "rank",        ",",          "a=1,,b=2",
  };
  for (const char* text : malformed) {
    EXPECT_THROW(tune::parse_search_space(text), CheckError)
        << "accepted: '" << text << "'";
  }
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    expect_total([](const std::string& text) { tune::parse_search_space(text); },
                 random_bytes(rng, 40), "parse_search_space");
  }
}

TEST(TunerFuzz, JunkHyperValuesFailLoudlyNotFatally) {
  const auto data = testdata::sample_noisy_power_law(64, 9);
  common::ModelSpec base;
  base.params = testdata::power_law_params();
  tune::TunerOptions options;
  options.folds = 2;
  options.rungs = 1;
  options.threads = 2;
  // A syntactically-valid space whose values no family understands: every
  // candidate fails to construct and the tuner reports the cause instead of
  // crashing worker threads.
  const tune::SearchSpace space({common::HyperAxis::grid("rank", {"banana", "-e9"})});
  EXPECT_THROW(tune::Tuner(options).run("cpr", base, data, space), CheckError);
}

TEST(RegistryFuzz, RandomHyperKeysAndValuesRejectedCleanly) {
  Rng rng(6);
  const auto families = ModelRegistry::instance().family_names();
  for (int i = 0; i < 400; ++i) {
    const auto& family =
        families[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(families.size()) - 1))];
    common::ModelSpec spec = testdata::zoo_spec(family);
    const std::string key = i % 2 == 0 ? "rank" : random_bytes(rng, 12);
    spec.hyper[key] = random_bytes(rng, 12);
    try {
      ModelRegistry::instance().create(family, spec);
    } catch (const CheckError&) {
      // Unknown key or unparsable value — the documented failure mode.
    } catch (const std::exception& e) {
      FAIL() << "family " << family << " leaked a foreign exception: " << e.what();
    }
  }
}

}  // namespace
}  // namespace cpr
