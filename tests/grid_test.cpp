// Tests for the domain discretization (Section 5.1) and the Eq.-5
// multilinear interpolation: boundaries/mid-points, cell lookup, weight
// partition-of-unity, edge extrapolation, frozen modes, serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/discretization.hpp"
#include "util/rng.hpp"

namespace cpr::grid {
namespace {

TEST(ParameterSpec, FactoryValidation) {
  EXPECT_THROW(ParameterSpec::numerical_uniform("bad", 5.0, 5.0), CheckError);
  EXPECT_THROW(ParameterSpec::numerical_log("bad", 0.0, 5.0), CheckError);
  EXPECT_THROW(ParameterSpec::categorical("bad", 0), CheckError);
  const auto p = ParameterSpec::numerical_log("ok", 1.0, 8.0);
  EXPECT_TRUE(p.is_numerical());
  const auto c = ParameterSpec::categorical("cat", 4);
  EXPECT_FALSE(c.is_numerical());
  EXPECT_EQ(c.categories, 4u);
}

TEST(Discretization, UniformBoundariesAndMidpoints) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  EXPECT_EQ(disc.dims(), (tensor::Dims{5}));
  EXPECT_DOUBLE_EQ(disc.boundary(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(disc.boundary(0, 5), 10.0);
  EXPECT_DOUBLE_EQ(disc.boundary(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(disc.midpoint(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(disc.midpoint(0, 4), 9.0);
}

TEST(Discretization, LogBoundariesAreGeometric) {
  Discretization disc({ParameterSpec::numerical_log("x", 1.0, 16.0)}, 4);
  EXPECT_NEAR(disc.boundary(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(disc.boundary(0, 2), 4.0, 1e-12);
  // Geometric midpoint of [1,2] is sqrt(2).
  EXPECT_NEAR(disc.midpoint(0, 0), std::sqrt(2.0), 1e-12);
}

TEST(Discretization, IntegralLogMidpointsCeilRounded) {
  // Wide integer range: rounding keeps mid-points distinct, so the paper's
  // ceil rule applies.
  Discretization disc({ParameterSpec::numerical_log("m", 32, 4096, true)}, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double mid = disc.midpoint(0, i);
    EXPECT_DOUBLE_EQ(mid, std::floor(mid));  // integral
  }
  EXPECT_DOUBLE_EQ(disc.midpoint(0, 0),
                   std::ceil(std::sqrt(32.0 * disc.boundary(0, 1))));
}

TEST(Discretization, NarrowIntegerRangeFallsBackToContinuous) {
  // 8 log cells over [4, 15] would collide after ceil; the fallback keeps
  // continuous geometric mid-points, which must be strictly increasing.
  Discretization disc({ParameterSpec::numerical_log("ord", 4, 15, true)}, 8);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_GT(disc.midpoint(0, i), disc.midpoint(0, i - 1));
  }
}

TEST(Discretization, CategoricalDims) {
  Discretization disc({ParameterSpec::categorical("solver", 3),
                       ParameterSpec::numerical_uniform("b", 0, 1)},
                      7);
  EXPECT_EQ(disc.dims(), (tensor::Dims{3, 7}));
}

TEST(Discretization, CellOfMapsBoundariesCorrectly) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  EXPECT_EQ(disc.cell_of({0.0})[0], 0u);
  EXPECT_EQ(disc.cell_of({1.999})[0], 0u);
  EXPECT_EQ(disc.cell_of({2.0})[0], 1u);
  EXPECT_EQ(disc.cell_of({9.999})[0], 4u);
  EXPECT_EQ(disc.cell_of({10.0})[0], 4u);  // hi lands in last cell
}

TEST(Discretization, CellOfClampsOutOfDomain) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  EXPECT_EQ(disc.cell_of({-3.0})[0], 0u);
  EXPECT_EQ(disc.cell_of({42.0})[0], 4u);
}

TEST(Discretization, CellOfCategorical) {
  Discretization disc({ParameterSpec::categorical("c", 4)}, 1);
  EXPECT_EQ(disc.cell_of({2.0})[0], 2u);
  EXPECT_THROW(disc.cell_of({5.0}), CheckError);
}

TEST(Discretization, InDomainChecks) {
  Discretization disc({ParameterSpec::numerical_log("x", 1.0, 100.0),
                       ParameterSpec::categorical("c", 2)},
                      4);
  EXPECT_TRUE(disc.in_domain({50.0, 1.0}));
  EXPECT_FALSE(disc.in_domain({0.5, 1.0}));
  EXPECT_FALSE(disc.in_domain({50.0, 2.0}));
  EXPECT_TRUE(disc.in_domain(0, 1.0));
  EXPECT_FALSE(disc.in_domain(0, 101.0));
}

TEST(ModeWeights, PartitionOfUnityInsideDomain) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.uniform(0.0, 10.0);
    const auto w = disc.mode_weights(0, x);
    EXPECT_FALSE(w.out_of_domain);
    const double total = w.weight_lo + (w.has_upper ? w.weight_hi : 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(ModeWeights, ExactAtMidpoints) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto w = disc.mode_weights(0, disc.midpoint(0, i));
    // Weight concentrated on the mid-point's slot.
    if (w.base == i) {
      EXPECT_NEAR(w.weight_lo, 1.0, 1e-12);
    } else {
      EXPECT_EQ(w.base + 1, i);
      EXPECT_NEAR(w.weight_hi, 1.0, 1e-12);
    }
  }
}

TEST(ModeWeights, EdgeMarginExtrapolatesLinearly) {
  // x below the first mid-point: weights still sum to 1, with weight_hi < 0.
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  const auto w = disc.mode_weights(0, 0.1);  // M_0 = 1.0
  EXPECT_EQ(w.base, 0u);
  EXPECT_GT(w.weight_lo, 1.0);
  EXPECT_LT(w.weight_hi, 0.0);
  EXPECT_NEAR(w.weight_lo + w.weight_hi, 1.0, 1e-12);
}

TEST(ModeWeights, SingleCellMode) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 1.0)}, 1);
  const auto w = disc.mode_weights(0, 0.7);
  EXPECT_FALSE(w.has_upper);
  EXPECT_DOUBLE_EQ(w.weight_lo, 1.0);
}

TEST(ModeWeights, CategoricalExact) {
  Discretization disc({ParameterSpec::categorical("c", 3)}, 1);
  const auto w = disc.mode_weights(0, 2.0);
  EXPECT_EQ(w.base, 2u);
  EXPECT_FALSE(w.has_upper);
}

TEST(ModeWeights, LogSpacedUsesLogInterpolation) {
  Discretization disc({ParameterSpec::numerical_log("x", 1.0, 16.0)}, 2);
  // Midpoints: 2 and 8 (geometric midpoints of [1,4] and [4,16]).
  const double geometric_middle = 4.0;  // log midpoint of [2, 8]
  const auto w = disc.mode_weights(0, geometric_middle);
  EXPECT_NEAR(w.weight_lo, 0.5, 1e-12);
  EXPECT_NEAR(w.weight_hi, 0.5, 1e-12);
}

TEST(Interpolate, ReproducesMultilinearFunctionExactly) {
  // f(x, y) = 2 + 3x + 5y is affine; interpolation over cell mid-point
  // values of an affine function is exact everywhere inside the hull.
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 1.0),
                       ParameterSpec::numerical_uniform("y", 0.0, 1.0)},
                      4);
  const auto eval = [&](const tensor::Index& idx) {
    return 2.0 + 3.0 * disc.midpoint(0, idx[0]) + 5.0 * disc.midpoint(1, idx[1]);
  };
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const double x = rng.uniform(0.0, 1.0), y = rng.uniform(0.0, 1.0);
    EXPECT_NEAR(disc.interpolate({x, y}, eval), 2.0 + 3.0 * x + 5.0 * y, 1e-10);
  }
}

TEST(Interpolate, ExactInLogSpaceForLogAffineFunction) {
  // f(x) = a + b log(x) is reproduced exactly along a log-spaced mode.
  Discretization disc({ParameterSpec::numerical_log("x", 1.0, 256.0)}, 8);
  const auto eval = [&](const tensor::Index& idx) {
    return 1.0 + 2.0 * std::log(disc.midpoint(0, idx[0]));
  };
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const double x = rng.log_uniform(1.0, 256.0);
    EXPECT_NEAR(disc.interpolate({x}, eval), 1.0 + 2.0 * std::log(x), 1e-10);
  }
}

TEST(Interpolate, EdgeExtrapolationContinuesLine) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 10.0)}, 5);
  const auto eval = [&](const tensor::Index& idx) {
    return 3.0 * disc.midpoint(0, idx[0]);
  };
  // In the half-cell margin [0, M_0) the line 3x continues exactly.
  EXPECT_NEAR(disc.interpolate({0.2}, eval), 0.6, 1e-10);
  EXPECT_NEAR(disc.interpolate({9.8}, eval), 29.4, 1e-10);
}

TEST(Interpolate, OutOfDomainThrows) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 1.0)}, 4);
  EXPECT_THROW(disc.interpolate({2.0}, [](const tensor::Index&) { return 0.0; }),
               CheckError);
}

TEST(Interpolate, FrozenModeSkipsInterpolation) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 1.0),
                       ParameterSpec::numerical_uniform("y", 0.0, 1.0)},
                      4);
  // eval depends on x-slot only through idx[0]; freezing mode 0 pins it.
  std::vector<bool> freeze{true, false};
  const auto eval = [&](const tensor::Index& idx) {
    return static_cast<double>(idx[0]) * 100.0 + disc.midpoint(1, idx[1]);
  };
  // x = 0.3 falls in cell 1 of 4 (boundaries at 0.25); frozen -> idx[0]=1.
  const double value = disc.interpolate({0.3, 0.5}, eval, &freeze);
  EXPECT_NEAR(value, 100.0 + 0.5, 1e-10);
}

TEST(Interpolate, FrozenModeClampsOutOfDomainCoordinate) {
  Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 1.0),
                       ParameterSpec::numerical_uniform("y", 0.0, 1.0)},
                      4);
  std::vector<bool> freeze{true, false};
  const auto eval = [&](const tensor::Index& idx) {
    return static_cast<double>(idx[0]);
  };
  // x = 7 is outside the domain, but frozen modes clamp: last cell = 3.
  EXPECT_NEAR(disc.interpolate({7.0, 0.5}, eval, &freeze), 3.0, 1e-12);
}

TEST(Interpolate, MixedCategoricalNumerical) {
  Discretization disc({ParameterSpec::categorical("c", 2),
                       ParameterSpec::numerical_uniform("x", 0.0, 1.0)},
                      4);
  const auto eval = [&](const tensor::Index& idx) {
    return idx[0] == 0 ? disc.midpoint(1, idx[1]) : 10.0 * disc.midpoint(1, idx[1]);
  };
  EXPECT_NEAR(disc.interpolate({0.0, 0.5}, eval), 0.5, 1e-10);
  EXPECT_NEAR(disc.interpolate({1.0, 0.5}, eval), 5.0, 1e-10);
}

TEST(Discretization, PerDimensionCellCounts) {
  Discretization disc({ParameterSpec::numerical_uniform("a", 0, 1),
                       ParameterSpec::numerical_uniform("b", 0, 1)},
                      std::vector<std::size_t>{3, 7});
  EXPECT_EQ(disc.dims(), (tensor::Dims{3, 7}));
  EXPECT_EQ(disc.cell_count(), 21u);
}

TEST(Discretization, SerializationRoundTrip) {
  Discretization disc({ParameterSpec::numerical_log("m", 32, 4096, true),
                       ParameterSpec::categorical("solver", 5),
                       ParameterSpec::numerical_uniform("b", -1.0, 1.0)},
                      std::vector<std::size_t>{8, 1, 6});
  BufferSink sink;
  disc.serialize(sink);
  BufferSource source(sink.buffer());
  const Discretization restored = Discretization::deserialize(source);
  EXPECT_EQ(restored.dims(), disc.dims());
  EXPECT_EQ(restored.params()[0].name, "m");
  EXPECT_EQ(restored.params()[1].categories, 5u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(restored.midpoint(0, i), disc.midpoint(0, i));
  }
}

class GridResolutions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridResolutions, InterpolationErrorShrinksWithResolution) {
  // Property: for a smooth nonlinear function, finer grids reduce the max
  // interpolation error (tested at the resolution-doubling level).
  const std::size_t cells = GetParam();
  const auto make_error = [](std::size_t c) {
    Discretization disc({ParameterSpec::numerical_uniform("x", 0.0, 3.14159)}, c);
    const auto eval = [&](const tensor::Index& idx) {
      return std::sin(disc.midpoint(0, idx[0]));
    };
    double max_err = 0.0;
    for (int k = 0; k <= 100; ++k) {
      const double x = 3.14159 * k / 100.0;
      max_err = std::max(max_err, std::abs(disc.interpolate({x}, eval) - std::sin(x)));
    }
    return max_err;
  };
  EXPECT_LT(make_error(cells * 2), make_error(cells));
}

INSTANTIATE_TEST_SUITE_P(Cells, GridResolutions, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace cpr::grid
