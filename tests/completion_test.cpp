// Tests for the tensor-completion optimizers (Section 4.2): ALS, CCD, SGD,
// and the interior-point AMN method. Property tests check monotone objective
// decrease, exact recovery of low-rank tensors from partial observations,
// positivity preservation, and generalization to held-out entries.

#include <gtest/gtest.h>

#include <cmath>

#ifdef CPR_HAVE_OPENMP
#include <omp.h>

#include "omp_test_utils.hpp"
#endif

#include "completion/als.hpp"
#include "completion/amn.hpp"
#include "completion/ccd.hpp"
#include "completion/loss.hpp"
#include "completion/sgd.hpp"
#include "tensor/mttkrp.hpp"
#include "util/rng.hpp"

namespace cpr::completion {
namespace {

using tensor::CpModel;
using tensor::Dims;
using tensor::Index;
using tensor::SparseTensor;

/// Random low-rank ground truth and a random subset of observed entries.
struct Problem {
  CpModel truth;
  SparseTensor observed;
  std::vector<Index> heldout_indices;
  std::vector<double> heldout_values;
};

Problem make_low_rank_problem(const Dims& dims, std::size_t rank, double fraction,
                              std::uint64_t seed, bool positive = false) {
  Rng rng(seed);
  CpModel truth(dims, rank);
  if (positive) {
    truth.init_positive(rng, 1.0, 0.5);
  } else {
    truth.init_random(rng);
  }
  const std::size_t total = tensor::element_count(dims);
  const auto n_observed = static_cast<std::size_t>(fraction * static_cast<double>(total));
  const auto rows = rng.sample_without_replacement(total, total);  // random permutation

  Problem problem{std::move(truth), SparseTensor(dims), {}, {}};
  for (std::size_t k = 0; k < total; ++k) {
    const Index idx = tensor::delinearize(rows[k], dims);
    const double value = problem.truth.eval(idx);
    if (k < n_observed) {
      problem.observed.push_back(idx, value);
    } else {
      problem.heldout_indices.push_back(idx);
      problem.heldout_values.push_back(value);
    }
  }
  return problem;
}

double heldout_rmse(const Problem& problem, const CpModel& model) {
  double total = 0.0;
  for (std::size_t k = 0; k < problem.heldout_indices.size(); ++k) {
    const double diff = model.eval(problem.heldout_indices[k]) - problem.heldout_values[k];
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(problem.heldout_indices.size()));
}

#ifdef CPR_HAVE_OPENMP
/// Runs `optimize` on a fresh deterministically-initialized model under the
/// given OpenMP thread count and returns the fitted model.
template <typename Optimize>
CpModel fit_with_threads(const Dims& dims, std::size_t rank, int threads,
                         Optimize&& optimize) {
  const cpr::testing::ThreadCountGuard guard;
  omp_set_num_threads(threads);
  CpModel model(dims, rank);
  Rng rng(123);
  model.init_random(rng);
  optimize(model);
  return model;
}

/// The parallel row solves partition rows across threads but leave each
/// row's arithmetic untouched, so sweeps with a fixed sweep count must agree
/// across thread counts to reduction-reordering precision.
template <typename Optimize>
void expect_thread_count_invariant(Optimize&& optimize) {
  const Dims dims{6, 5, 4};
  const CpModel serial = fit_with_threads(dims, 3, 1, [&](CpModel& m) { optimize(m); });
  for (const int threads : {2, 8}) {
    const CpModel threaded =
        fit_with_threads(dims, 3, threads, [&](CpModel& m) { optimize(m); });
    for (std::size_t j = 0; j < dims.size(); ++j) {
      EXPECT_LT(linalg::max_abs_diff(threaded.factor(j), serial.factor(j)), 1e-12)
          << "mode " << j << ", " << threads << " threads";
    }
  }
}

TEST(Als, ThreadedSweepMatchesSerial) {
  const auto problem = make_low_rank_problem({6, 5, 4}, 2, 0.6, 77);
  CompletionOptions options;
  options.max_sweeps = 5;
  options.tol = 0.0;  // fixed sweep count: no data-dependent early exit
  expect_thread_count_invariant(
      [&](CpModel& m) { als_complete(problem.observed, m, options); });
}

TEST(Ccd, ThreadedSweepMatchesSerial) {
  const auto problem = make_low_rank_problem({6, 5, 4}, 2, 0.6, 77);
  CompletionOptions options;
  options.max_sweeps = 5;
  options.tol = 0.0;
  expect_thread_count_invariant(
      [&](CpModel& m) { ccd_complete(problem.observed, m, options); });
}

TEST(Sgd, HogwildReducesObjective) {
  const auto problem = make_low_rank_problem({6, 5, 4}, 2, 0.7, 11);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(12);
  model.init_random(rng);
  SgdOptions options;
  options.max_sweeps = 30;
  options.tol = 0.0;
  options.hogwild = true;
  const double before = completion_objective(problem.observed, model, options.regularization);
  const auto report = sgd_complete(problem.observed, model, options);
  EXPECT_LT(report.final_objective(), before);
}
#endif  // CPR_HAVE_OPENMP

TEST(Objective, ZeroForExactModel) {
  Rng rng(1);
  CpModel m({3, 3}, 2);
  m.init_random(rng);
  SparseTensor t({3, 3});
  t.push_back({1, 1}, m.eval({1, 1}));
  EXPECT_NEAR(completion_objective(t, m, 0.0), 0.0, 1e-18);
}

TEST(Objective, RegularizationAdds) {
  CpModel m({2, 2}, 1);
  m.factor(0) = linalg::Matrix{{1}, {0}};
  m.factor(1) = linalg::Matrix{{1}, {0}};
  SparseTensor t({2, 2});
  t.push_back({0, 0}, 1.0);  // exact
  EXPECT_NEAR(completion_objective(t, m, 0.5), 0.5 * 2.0, 1e-15);
}

class AlsRecovery : public ::testing::TestWithParam<double> {};

TEST_P(AlsRecovery, RecoversLowRankFromPartialObservations) {
  const double fraction = GetParam();
  const auto problem = make_low_rank_problem({10, 9, 8}, 2, fraction, 42);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(7);
  model.init_random(rng, 0.5);
  CompletionOptions options;
  options.regularization = 1e-10;
  options.max_sweeps = 300;
  options.tol = 1e-12;
  const auto report = als_complete(problem.observed, model, options);
  EXPECT_LT(report.final_objective(), 1e-8);
  EXPECT_LT(heldout_rmse(problem, model), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Fractions, AlsRecovery, ::testing::Values(0.3, 0.5, 0.8));

TEST(Als, ObjectiveDecreasesMonotonically) {
  const auto problem = make_low_rank_problem({8, 8, 8}, 3, 0.4, 11);
  CpModel model(problem.observed.dims(), 3);
  Rng rng(3);
  model.init_random(rng, 0.5);
  CompletionOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 30;
  options.tol = 0.0;  // run all sweeps
  const auto report = als_complete(problem.observed, model, options);
  for (std::size_t s = 1; s < report.objective_history.size(); ++s) {
    EXPECT_LE(report.objective_history[s], report.objective_history[s - 1] + 1e-10);
  }
}

TEST(Als, HandlesUnobservedSlices) {
  // Row 3 of mode 0 never appears in Omega; ALS must leave it untouched up
  // to the output-preserving per-column rebalancing (and must not crash).
  SparseTensor t({5, 4});
  t.push_back({0, 0}, 1.0);
  t.push_back({1, 1}, 2.0);
  t.push_back({2, 2}, 3.0);
  t.push_back({4, 3}, 4.0);
  CpModel model({5, 4}, 2);
  Rng rng(5);
  model.init_random(rng);
  const auto before = model.factor(0).row(3);
  CompletionOptions options;
  options.max_sweeps = 5;
  als_complete(t, model, options);
  const auto after = model.factor(0).row(3);
  for (std::size_t r = 0; r < after.size(); ++r) {
    EXPECT_TRUE(std::isfinite(after[r]));
    // Direction preserved per column: sign unchanged (scale may differ).
    if (before[r] != 0.0) {
      EXPECT_EQ(after[r] > 0.0, before[r] > 0.0);
    }
  }
}

TEST(Als, EmptyTensorThrows) {
  SparseTensor t({3, 3});
  CpModel model({3, 3}, 1);
  CompletionOptions options;
  EXPECT_THROW(als_complete(t, model, options), CheckError);
}

TEST(Als, RegularizationShrinksFactors) {
  const auto problem = make_low_rank_problem({6, 6}, 2, 0.9, 13);
  CompletionOptions weak, strong;
  weak.regularization = 1e-10;
  strong.regularization = 1.0;
  weak.max_sweeps = strong.max_sweeps = 50;

  CpModel m1(problem.observed.dims(), 2), m2(problem.observed.dims(), 2);
  Rng rng(1);
  m1.init_random(rng, 0.5);
  m2 = m1;
  als_complete(problem.observed, m1, weak);
  als_complete(problem.observed, m2, strong);
  EXPECT_LT(m2.regularization_term(), m1.regularization_term());
}

TEST(Als, MatrixCaseMatchesKnownCompletion) {
  // Rank-1 matrix 2x2 with 3 observed entries has a unique rank-1 completion:
  // t11 = t01 * t10 / t00.
  SparseTensor t({2, 2});
  t.push_back({0, 0}, 2.0);
  t.push_back({0, 1}, 6.0);
  t.push_back({1, 0}, 4.0);
  CpModel model({2, 2}, 1);
  Rng rng(2);
  model.init_random(rng, 0.5);
  CompletionOptions options;
  options.regularization = 1e-12;
  options.max_sweeps = 200;
  options.tol = 1e-14;
  als_complete(t, model, options);
  EXPECT_NEAR(model.eval({1, 1}), 12.0, 1e-5);
}

TEST(Ccd, ObjectiveDecreasesMonotonically) {
  const auto problem = make_low_rank_problem({7, 7, 7}, 2, 0.5, 17);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(4);
  model.init_random(rng, 0.5);
  CompletionOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 20;
  options.tol = 0.0;
  const auto report = ccd_complete(problem.observed, model, options);
  for (std::size_t s = 1; s < report.objective_history.size(); ++s) {
    EXPECT_LE(report.objective_history[s], report.objective_history[s - 1] + 1e-10);
  }
}

TEST(Ccd, RecoversLowRankTensor) {
  const auto problem = make_low_rank_problem({8, 8, 6}, 2, 0.6, 19);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(6);
  model.init_random(rng, 0.5);
  CompletionOptions options;
  options.regularization = 1e-10;
  options.max_sweeps = 400;
  options.tol = 1e-13;
  ccd_complete(problem.observed, model, options);
  EXPECT_LT(heldout_rmse(problem, model), 1e-2);
}

TEST(Ccd, ComparableObjectiveToAlsAfterSweeps) {
  // ALS and CCD minimize the same objective; after a few sweeps from the
  // same init they should land within a modest factor of each other (the
  // paper notes CCD typically converges slower per sweep, but neither
  // method should be wildly off).
  const auto problem = make_low_rank_problem({8, 8, 8}, 3, 0.5, 23);
  CompletionOptions options;
  options.regularization = 1e-8;
  options.max_sweeps = 10;
  options.tol = 0.0;
  CpModel m_als(problem.observed.dims(), 3), m_ccd(problem.observed.dims(), 3);
  Rng rng(8);
  m_als.init_random(rng, 0.5);
  m_ccd = m_als;
  const auto r_als = als_complete(problem.observed, m_als, options);
  const auto r_ccd = ccd_complete(problem.observed, m_ccd, options);
  EXPECT_LE(r_als.final_objective(), r_ccd.final_objective() * 5.0 + 1e-12);
  EXPECT_LE(r_ccd.final_objective(), r_als.final_objective() * 5.0 + 1e-12);
}

TEST(Sgd, ReducesObjective) {
  const auto problem = make_low_rank_problem({8, 8}, 2, 0.7, 29);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(9);
  model.init_random(rng, 0.3);
  const double before = completion_objective(problem.observed, model, 1e-6);
  SgdOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 50;
  options.learning_rate = 0.02;
  options.tol = 0.0;
  sgd_complete(problem.observed, model, options);
  const double after = completion_objective(problem.observed, model, 1e-6);
  EXPECT_LT(after, 0.3 * before);
}

TEST(Sgd, DeterministicForSeed) {
  const auto problem = make_low_rank_problem({6, 6}, 2, 0.8, 31);
  SgdOptions options;
  options.max_sweeps = 10;
  options.seed = 77;
  CpModel m1(problem.observed.dims(), 2), m2(problem.observed.dims(), 2);
  Rng rng(10);
  m1.init_random(rng, 0.3);
  m2 = m1;
  sgd_complete(problem.observed, m1, options);
  sgd_complete(problem.observed, m2, options);
  EXPECT_EQ(linalg::max_abs_diff(m1.factor(0), m2.factor(0)), 0.0);
}

TEST(Loss, LeastSquaresDerivatives) {
  const double t = 2.0, m = 3.0, h = 1e-6;
  const double numeric =
      (LeastSquaresLoss::value(t, m + h) - LeastSquaresLoss::value(t, m - h)) / (2 * h);
  EXPECT_NEAR(LeastSquaresLoss::d1(t, m), numeric, 1e-6);
  EXPECT_DOUBLE_EQ(LeastSquaresLoss::d2(t, m), 2.0);
}

TEST(Loss, LogQuadraticDerivatives) {
  const double t = 2.0, m = 3.0, h = 1e-7;
  const double numeric_d1 =
      (LogQuadraticLoss::value(t, m + h) - LogQuadraticLoss::value(t, m - h)) / (2 * h);
  EXPECT_NEAR(LogQuadraticLoss::d1(t, m), numeric_d1, 1e-5);
  const double numeric_d2 =
      (LogQuadraticLoss::d1(t, m + h) - LogQuadraticLoss::d1(t, m - h)) / (2 * h);
  EXPECT_NEAR(LogQuadraticLoss::d2(t, m), numeric_d2, 1e-4);
}

TEST(Loss, LogQuadraticScaleIndependent) {
  // phi(t, a t) == phi(t', a t') for any positive scale.
  EXPECT_NEAR(LogQuadraticLoss::value(1.0, 2.0), LogQuadraticLoss::value(100.0, 200.0),
              1e-12);
}

TEST(Amn, RequiresPositiveModelAndData) {
  SparseTensor t({2, 2});
  t.push_back({0, 0}, 1.0);
  CpModel model({2, 2}, 1);
  Rng rng(11);
  model.init_random(rng);  // has negative entries
  AmnOptions options;
  EXPECT_THROW(amn_complete(t, model, options), CheckError);

  model.init_positive(rng, 1.0);
  SparseTensor bad({2, 2});
  bad.push_back({0, 0}, -1.0);
  EXPECT_THROW(amn_complete(bad, model, options), CheckError);
}

TEST(Amn, PreservesPositivity) {
  const auto problem = make_low_rank_problem({6, 6, 5}, 2, 0.6, 37, /*positive=*/true);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(12);
  model.init_positive(rng, 1.0);
  AmnOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 40;
  amn_complete(problem.observed, model, options);
  EXPECT_TRUE(model.all_factors_positive());
}

TEST(Amn, FitsPositiveLowRankTensor) {
  const auto problem = make_low_rank_problem({8, 7, 6}, 2, 0.6, 41, /*positive=*/true);
  CpModel model(problem.observed.dims(), 2);
  Rng rng(13);
  model.init_positive(rng, 1.0);
  AmnOptions options;
  options.regularization = 1e-8;
  options.max_sweeps = 60;
  const auto report = amn_complete(problem.observed, model, options);
  EXPECT_LT(report.final_objective(), 1e-3);
  // Held-out relative error should be small too.
  double max_log_q = 0.0;
  for (std::size_t k = 0; k < problem.heldout_indices.size(); ++k) {
    const double prediction = model.eval(problem.heldout_indices[k]);
    ASSERT_GT(prediction, 0.0);
    max_log_q = std::max(max_log_q,
                         std::abs(std::log(prediction / problem.heldout_values[k])));
  }
  EXPECT_LT(max_log_q, 0.5);
}

TEST(Amn, ObjectiveImprovesOverInitialization) {
  const auto problem = make_low_rank_problem({6, 6, 6}, 3, 0.7, 43, /*positive=*/true);
  CpModel model(problem.observed.dims(), 3);
  Rng rng(14);
  model.init_positive(rng, 1.0, 0.4);
  const double before = mlogq2_objective(problem.observed, model, 1e-6);
  AmnOptions options;
  options.regularization = 1e-6;
  options.max_sweeps = 30;
  amn_complete(problem.observed, model, options);
  const double after = mlogq2_objective(problem.observed, model, 1e-6);
  EXPECT_LT(after, 0.3 * before);
}

TEST(Amn, Mlogq2ObjectiveScaleIndependent) {
  // Scaling data and model together leaves the data term unchanged.
  Rng rng(15);
  CpModel model({4, 4}, 2);
  model.init_positive(rng, 1.0);
  SparseTensor t({4, 4});
  t.push_back({1, 2}, 2.0 * model.eval({1, 2}));
  t.push_back({3, 0}, 0.5 * model.eval({3, 0}));
  const double obj1 = mlogq2_objective(t, model, 0.0);
  // Multiply every observation by 10 and one factor by 10: log-ratio fixed.
  SparseTensor t10({4, 4});
  t10.push_back({1, 2}, 10.0 * t.value(0));
  t10.push_back({3, 0}, 10.0 * t.value(1));
  CpModel scaled = model;
  scaled.factor(0) *= 10.0;
  EXPECT_NEAR(mlogq2_objective(t10, scaled, 0.0), obj1, 1e-10);
}

TEST(Amn, BarrierScheduleRespectsMaxSweeps) {
  const auto problem = make_low_rank_problem({5, 5}, 1, 0.9, 47, /*positive=*/true);
  CpModel model(problem.observed.dims(), 1);
  Rng rng(16);
  model.init_positive(rng, 1.0);
  AmnOptions options;
  options.max_sweeps = 3;
  const auto report = amn_complete(problem.observed, model, options);
  EXPECT_LE(report.sweeps, 3);
}

}  // namespace
}  // namespace cpr::completion
