// quant_test — conformance suite for the quantized factor payloads
// (fp32/fp16/int8) of the versioned CPRARCH1 archive.
//
// The contract under test, per quantization mode:
//   fp64  save→reload is lossless: predictions bitwise-equal the original
//         model and a re-save reproduces the archive byte for byte.
//   fp32  the encoding is idempotent: a second save→reload round trip is
//         bitwise-stable, and predictions stay within a tight relative
//         tolerance of the fp64 original.
//   fp16/int8  predictions stay within a pinned per-mode (and, where a
//         family is structurally sensitive, per-family) relative tolerance.
// Every registered family must hold the contract — the loaders are supposed
// to be completely transparent to the encoding.
//
// The golden-bytes tests pin the on-disk block encodings themselves, so an
// accidental format change fails here before it bricks saved archives.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/model_registry.hpp"
#include "core/cpr_model.hpp"
#include "core/model_file.hpp"
#include "grid/discretization.hpp"
#include "linalg/matrix.hpp"
#include "test_data.hpp"
#include "util/check.hpp"
#include "util/kernel_mode.hpp"
#include "util/quantize.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace cpr {
namespace {

using common::Dataset;
using common::ModelRegistry;
using testdata::sample_power_law;
using testdata::temp_path;
using testdata::zoo_spec;

constexpr QuantMode kAllModes[] = {QuantMode::F64, QuantMode::F32, QuantMode::F16,
                                   QuantMode::I8};

/// Relative prediction error |quantized - original| / max(|original|, eps).
double rel_error(double quantized, double original) {
  const double scale = std::max(std::abs(original), 1e-300);
  return std::abs(quantized - original) / scale;
}

/// Pinned tolerance on the relative prediction error per mode. The values
/// are deliberate over-measurement headroom (~4x the observed maximum over
/// all families on the fixture), not tuned-to-pass: loosening them is a
/// format regression. GP gets per-family overrides — its predictions run
/// quantized support coordinates through the kernel distance, which
/// amplifies per-element error far more than a linear read-out does.
double mode_tolerance(QuantMode mode, const std::string& family) {
  switch (mode) {
    case QuantMode::F64:
      return 0.0;
    case QuantMode::F32:
      return 1e-5;  // observed max 1.7e-6 (gp)
    case QuantMode::F16:
      // observed max 2.4e-3 over the linear-readout families, 3.1e-2 for gp
      return family == "gp" ? 0.12 : 1e-2;
    case QuantMode::I8:
      // observed max 3.9e-2 over the linear-readout families, 0.59 for gp
      return family == "gp" ? 2.0 : 0.15;
  }
  return 0.0;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- all-family save→reload→predict conformance ---------------------------

TEST(QuantArchive, EveryFamilyRoundTripsUnderEveryMode) {
  const Dataset train = sample_power_law(512, 1);
  const Dataset probe = sample_power_law(48, 2);
  for (const auto& family : ModelRegistry::instance().family_names()) {
    SCOPED_TRACE("family " + family);
    auto model = ModelRegistry::instance().create(family, zoo_spec(family));
    ASSERT_NE(model, nullptr);
    model->fit(train);
    for (const QuantMode mode : kAllModes) {
      const std::string mode_name = util::quant_mode_name(mode);
      SCOPED_TRACE("mode " + mode_name);
      const auto path = temp_path("cpr_quant_" + family + "_" + mode_name + ".cprm");
      core::save_model_file(*model, path, mode);
      // The declared archive size is the real file size, for every mode.
      EXPECT_EQ(core::model_archive_bytes(*model, mode),
                std::filesystem::file_size(path));
      const auto loaded = core::load_model_file(path);
      ASSERT_NE(loaded, nullptr);
      EXPECT_EQ(loaded->type_tag(), model->type_tag());
      EXPECT_EQ(loaded->archive_quant_mode(), mode);
      const double tolerance = mode_tolerance(mode, family);
      double max_rel = 0.0;
      for (std::size_t i = 0; i < probe.size(); ++i) {
        const double original = model->predict(probe.config(i));
        const double quantized = loaded->predict(probe.config(i));
        if (mode == QuantMode::F64) {
          EXPECT_DOUBLE_EQ(quantized, original) << "probe row " << i;
        } else {
          max_rel = std::max(max_rel, rel_error(quantized, original));
        }
      }
      if (getenv("CPR_QUANT_DEBUG")) printf("DBG %s %s %.3g\n", family.c_str(), mode_name.c_str(), max_rel);
      EXPECT_LE(max_rel, tolerance) << "max relative prediction error";
      if (mode == QuantMode::F64) {
        // Lossless mode must also reproduce the archive byte for byte.
        const auto resaved = temp_path("cpr_quant_" + family + "_resave.cprm");
        core::save_model_file(*loaded, resaved, QuantMode::F64);
        EXPECT_EQ(file_bytes(resaved), file_bytes(path));
        std::filesystem::remove(resaved);
      } else {
        // Lossy encodings are idempotent: a second round trip through the
        // same mode changes nothing (bitwise-equal predictions).
        const auto again = temp_path("cpr_quant_" + family + "_gen2.cprm");
        core::save_model_file(*loaded, again, mode);
        const auto reloaded = core::load_model_file(again);
        for (std::size_t i = 0; i < probe.size(); ++i) {
          EXPECT_DOUBLE_EQ(reloaded->predict(probe.config(i)),
                           loaded->predict(probe.config(i)))
              << "second-generation probe row " << i;
        }
        std::filesystem::remove(again);
      }
      std::filesystem::remove(path);
    }
  }
}

// --- the fp32 dequantize-free predict path --------------------------------

// A CPR model reloaded from an fp32 archive predicts through float factor
// tiles; the serial/blocked bitwise invariant must survive that storage
// switch, and batch must agree with scalar predict row for row.
TEST(QuantArchive, Fp32CprSerialAndBlockedStayBitwiseEqual) {
  const Dataset train = sample_power_law(512, 3);
  auto model = ModelRegistry::instance().create("cpr", zoo_spec("cpr"));
  model->fit(train);
  const auto path = temp_path("cpr_quant_fp32_kernel.cprm");
  core::save_model_file(*model, path, QuantMode::F32);
  const auto loaded = core::load_model_file(path);
  std::filesystem::remove(path);

  const Dataset probe = sample_power_law(257, 4);
  const auto run = [&](KernelMode kernel) {
    KernelModeGuard guard;
    set_kernel_mode(kernel);
    return loaded->predict_batch(probe.x);
  };
  const auto serial = run(KernelMode::Serial);
  const auto blocked = run(KernelMode::Blocked);
  ASSERT_EQ(serial.size(), probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(blocked[i], serial[i]) << "row " << i;
    EXPECT_EQ(serial[i], loaded->predict(probe.config(i))) << "row " << i;
  }
}

// --- archive size: the point of the feature -------------------------------

// A rank-32 CPR model (the shape the serving fleet actually quantizes) must
// shrink by >= 3.5x under fp16 and int8 — the acceptance floor of the
// quantization issue. fp32 halving is structural, with a small fixed
// overhead for the non-matrix payload remainder.
TEST(QuantArchive, Fp16AndInt8ShrinkAtLeast3p5x) {
  std::vector<grid::ParameterSpec> specs{
      grid::ParameterSpec::numerical_log("m", 32, 4096, true),
      grid::ParameterSpec::numerical_log("n", 32, 4096, true),
      grid::ParameterSpec::numerical_log("k", 32, 4096, true)};
  core::CprOptions options;
  options.rank = 32;
  core::CprModel model(grid::Discretization(specs, 16), options);
  Rng rng(5);
  Dataset train;
  train.x = linalg::Matrix(1024, 3);
  train.y.resize(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    for (std::size_t j = 0; j < 3; ++j) train.x(i, j) = rng.log_uniform(32, 4096);
    train.y[i] = 1e-9 * train.x(i, 0) * train.x(i, 1) * train.x(i, 2);
  }
  model.fit(train);

  const double f64 = static_cast<double>(core::model_archive_bytes(model, QuantMode::F64));
  const double f32 = static_cast<double>(core::model_archive_bytes(model, QuantMode::F32));
  const double f16 = static_cast<double>(core::model_archive_bytes(model, QuantMode::F16));
  const double i8 = static_cast<double>(core::model_archive_bytes(model, QuantMode::I8));
  EXPECT_GE(f64 / f32, 1.8);
  EXPECT_GE(f64 / f16, 3.5);
  EXPECT_GE(f64 / i8, 3.5);
  EXPECT_LT(i8, f16);  // int8 must actually be the smallest encoding
}

// --- golden bytes: the on-disk block encodings ----------------------------

std::string hex_dump(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  char buffer[3];
  for (const std::uint8_t b : bytes) {
    std::snprintf(buffer, sizeof(buffer), "%02x", b);
    out += buffer;
  }
  return out;
}

/// The fixed matrix every golden test serializes: values chosen to be exact
/// in binary16 (so the fp16 block is reproducible) with distinct per-column
/// ranges (so the int8 scale/offset math is exercised).
linalg::Matrix golden_matrix() {
  linalg::Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = -2.5;
  m(0, 2) = 0.15625;
  m(1, 0) = 3.0;
  m(1, 1) = -0.75;
  m(1, 2) = 100.0;
  return m;
}

std::string serialized_hex(QuantMode mode) {
  BufferSink sink;
  sink.set_quant_mode(mode);
  golden_matrix().serialize(sink);
  return hex_dump(sink.buffer());
}

TEST(QuantGoldenBytes, PinsEveryBlockEncoding) {
  // rows=2, cols=3 as LE u64s; fp64 keeps the legacy (untagged) layout —
  // rows, cols, then write_doubles (count-prefixed raw doubles) — so
  // pre-quantization readers of v1 archives never see a format change.
  const std::string header = "0200000000000000" "0300000000000000";
  EXPECT_EQ(serialized_hex(QuantMode::F64),
            header + "0600000000000000" +
                "000000000000f03f" "00000000000004c0" "000000000000c43f"
                "0000000000000840" "000000000000e8bf" "0000000000005940");
  // Quantized blocks are tagged (no count prefix — rows*cols is the count):
  // 01 = f32 raw floats.
  EXPECT_EQ(serialized_hex(QuantMode::F32),
            header + "01" +
                "0000803f" "000020c0" "0000203e" "00004040" "000040bf" "0000c842");
  // 02 = f16 binary16 bits.
  EXPECT_EQ(serialized_hex(QuantMode::F16),
            header + "02" + "003c" "00c1" "0031" "0042" "00ba" "4056");
  // 03 = int8: per-column {f32 scale, f32 offset} then row-major codes.
  // col0 [1,3]: scale 2/254, offset 2; col1 [-2.5,-0.75]: scale 1.75/254,
  // offset -1.625; col2 [0.15625,100]: scale 99.84375/254, offset 50.078125.
  EXPECT_EQ(serialized_hex(QuantMode::I8),
            header + "03" +
                "0402013c" "00000040"   // col0 scale/offset
                "87c3e13b" "0000d0bf"   // col1
                "8542c93e" "00504842"   // col2
                "81" "81" "81"          // row 0 codes: -127, -127, -127
                "7f" "7f" "7f");        // row 1 codes: +127, +127, +127
}

TEST(QuantGoldenBytes, EmptyAndConstantBlocksStayCanonical) {
  // An all-equal column quantizes with scale 0 and decodes exactly.
  linalg::Matrix constant(2, 1);
  constant(0, 0) = 7.0;
  constant(1, 0) = 7.0;
  BufferSink sink;
  sink.set_quant_mode(QuantMode::I8);
  constant.serialize(sink);
  BufferSource source(sink.buffer());
  source.set_quant_mode(QuantMode::I8, /*quantized_framing=*/true);
  const auto back = linalg::Matrix::deserialize(source);
  EXPECT_EQ(back(0, 0), 7.0);
  EXPECT_EQ(back(1, 0), 7.0);
}

// --- newer-version archives name the version ------------------------------

// The satellite fix: a payload version from the future must be reported by
// number, not as a generic corrupt-archive failure — operators need to know
// they are holding a newer build's archive.
TEST(QuantArchive, NewerArchiveVersionIsNamedInTheError) {
  const auto path = temp_path("cpr_quant_future_version.cprm");
  {
    BufferSink body;
    body.write_string("cpr");
    body.write_u64(3);  // this build reads versions 1..2
    std::ofstream out(path, std::ios::binary);
    out.write("CPRARCH1", 8);
    const std::uint64_t size = body.buffer().size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(body.buffer().data()),
              static_cast<std::streamsize>(size));
  }
  try {
    core::load_model_file(path);
    FAIL() << "a version-3 archive must not load";
  } catch (const CheckError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("version 3"), std::string::npos) << message;
    EXPECT_NE(message.find("1..2"), std::string::npos) << message;
  }
  std::filesystem::remove(path);
}

// A version-2 archive whose quant-mode byte is out of range is rejected by
// name as well (the mode byte is the only v2 header addition).
TEST(QuantArchive, UnknownQuantModeByteIsRejected) {
  const auto path = temp_path("cpr_quant_bad_mode.cprm");
  {
    BufferSink body;
    body.write_string("cpr");
    body.write_u64(2);
    body.write_pod<std::uint8_t>(9);  // no such QuantMode
    std::ofstream out(path, std::ios::binary);
    out.write("CPRARCH1", 8);
    const std::uint64_t size = body.buffer().size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(body.buffer().data()),
              static_cast<std::streamsize>(size));
  }
  EXPECT_THROW(core::load_model_file(path), CheckError);
  std::filesystem::remove(path);
}

// --- mode-name plumbing ---------------------------------------------------

TEST(QuantMode_, NamesRoundTripAndBadNamesThrow) {
  for (const QuantMode mode : kAllModes) {
    EXPECT_EQ(util::parse_quant_mode(util::quant_mode_name(mode)), mode);
  }
  EXPECT_THROW(util::parse_quant_mode("fp8"), CheckError);
  EXPECT_THROW(util::parse_quant_mode(""), CheckError);
}

// --- the f16 software conversion ------------------------------------------

TEST(QuantF16, ConversionIsExactOnRepresentablesAndMonotone) {
  // Exactly representable values survive the round trip bit for bit.
  for (const double v : {0.0, 1.0, -1.0, 0.5, -0.25, 2048.0, 65504.0, -65504.0,
                         std::ldexp(1.0, -14) /* smallest normal */,
                         std::ldexp(1.0, -24) /* smallest subnormal */}) {
    EXPECT_EQ(util::f16_bits_to_double(util::f16_bits_from_double(v)), v) << v;
  }
  // Round-to-nearest-even: the halfway mantissa rounds to the even side.
  EXPECT_EQ(util::f16_bits_to_double(util::f16_bits_from_double(1.0 + 1.0 / 2048.0)),
            1.0);
  EXPECT_EQ(util::f16_bits_to_double(util::f16_bits_from_double(1.0 + 3.0 / 2048.0)),
            1.0 + 2.0 / 1024.0);
  // The relative error of any normal-range conversion is at most 2^-11.
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(1e-4, 1e4) * (i % 2 == 0 ? 1.0 : -1.0);
    const double back = util::f16_bits_to_double(util::f16_bits_from_double(v));
    EXPECT_LE(rel_error(back, v), 1.0 / 2048.0) << v;
  }
}

}  // namespace
}  // namespace cpr
