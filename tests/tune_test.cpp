// Tests for the universal tuner (src/tune): exact k-fold partitioning with
// no train->validation leaks, deterministic search-space materialization,
// bitwise-identical ranked trials across 1/2/8 tuner threads, successive
// halving promoting a planted-optimum candidate, and clean failure when a
// search space produces only broken candidates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/evaluation.hpp"
#include "metrics/metrics.hpp"
#include "test_data.hpp"
#include "tune/cross_validator.hpp"
#include "tune/search_space.hpp"
#include "tune/tuner.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using common::HyperAxis;
using common::ModelRegistry;
using common::ModelSpec;
using testdata::power_law_params;
using testdata::sample_power_law;

// ------------------------------------------------------------- k-fold

TEST(KFold, PartitionsExactlyWithoutLeaks) {
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{10, 2},
                             {103, 5},
                             {96, 3},
                             {7, 7}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k));
    const auto folds = tune::kfold_splits(n, k, 42);
    ASSERT_EQ(folds.size(), k);

    std::vector<std::size_t> all_valid;
    for (const auto& fold : folds) {
      // Per fold: train + valid partition [0, n) with no overlap.
      EXPECT_EQ(fold.train_rows.size() + fold.valid_rows.size(), n);
      std::set<std::size_t> train(fold.train_rows.begin(), fold.train_rows.end());
      EXPECT_EQ(train.size(), fold.train_rows.size());
      for (const std::size_t row : fold.valid_rows) {
        EXPECT_LT(row, n);
        EXPECT_FALSE(train.count(row)) << "row " << row << " leaked into the fit set";
      }
      all_valid.insert(all_valid.end(), fold.valid_rows.begin(), fold.valid_rows.end());
    }
    // Across folds: every row is held out exactly once, sizes differ <= 1.
    std::sort(all_valid.begin(), all_valid.end());
    ASSERT_EQ(all_valid.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(all_valid[i], i);
    const auto [min_fold, max_fold] = std::minmax_element(
        folds.begin(), folds.end(), [](const auto& a, const auto& b) {
          return a.valid_rows.size() < b.valid_rows.size();
        });
    EXPECT_LE(max_fold->valid_rows.size() - min_fold->valid_rows.size(), 1u);
  }
}

TEST(KFold, RejectsDegenerateSplits) {
  EXPECT_THROW(tune::kfold_splits(10, 1, 1), CheckError);
  EXPECT_THROW(tune::kfold_splits(10, 0, 1), CheckError);
  EXPECT_THROW(tune::kfold_splits(3, 4, 1), CheckError);
}

TEST(CrossValidate, MatchesManualFoldEvaluation) {
  const Dataset data = sample_power_law(120, 3, 0.1);
  const ModelSpec spec = testdata::zoo_spec("knn");
  const auto folds = tune::kfold_splits(data.size(), 3, 9);
  const auto score = tune::cross_validate("knn", spec, data, folds);

  double abs_sum = 0.0, sq_sum = 0.0;
  std::size_t held_out = 0;
  for (const auto& fold : folds) {
    auto model = ModelRegistry::instance().create("knn", spec);
    model->fit(data.subset(fold.train_rows));
    const Dataset valid = data.subset(fold.valid_rows);
    const auto predictions = model->predict_batch(valid.x);
    abs_sum += metrics::mlogq(predictions, valid.y) * static_cast<double>(valid.size());
    sq_sum += metrics::mlogq2(predictions, valid.y) * static_cast<double>(valid.size());
    held_out += valid.size();
  }
  EXPECT_EQ(score.mlogq, abs_sum / static_cast<double>(held_out));
  EXPECT_EQ(score.rmse_log, std::sqrt(sq_sum / static_cast<double>(held_out)));
}

// ------------------------------------------------------- search space

TEST(SearchSpace, EnumerableGridSweepsLexicographically) {
  const tune::SearchSpace space({HyperAxis::grid("a", {"1", "2"}),
                                 HyperAxis::grid("b", {"x", "y", "z"})});
  EXPECT_TRUE(space.enumerable());
  EXPECT_EQ(space.cardinality(), 6u);
  const auto candidates = space.materialize(24, 1);
  ASSERT_EQ(candidates.size(), 6u);
  EXPECT_EQ(candidates.front().label(), "a=1 b=x");
  EXPECT_EQ(candidates[1].label(), "a=1 b=y");
  EXPECT_EQ(candidates[3].label(), "a=2 b=x");
  EXPECT_EQ(candidates.back().label(), "a=2 b=z");
  // A tighter trial cap switches to seeded sampling but still yields
  // distinct candidates.
  const auto sampled = space.materialize(3, 1);
  ASSERT_EQ(sampled.size(), 3u);
  std::set<std::string> labels;
  for (const auto& candidate : sampled) labels.insert(candidate.label());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(SearchSpace, SampledCandidatesAreDeterministicAndDeduplicated) {
  const tune::SearchSpace space({HyperAxis::linear_int("k", 1, 4),
                                 HyperAxis::log("lambda", 1e-6, 1e-3)});
  const auto first = space.materialize(8, 7);
  const auto second = space.materialize(8, 7);
  ASSERT_EQ(first.size(), 8u);
  ASSERT_EQ(second.size(), 8u);
  std::set<std::string> labels;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].label(), second[i].label());
    labels.insert(first[i].label());
  }
  EXPECT_EQ(labels.size(), first.size());
  // A different seed draws a different candidate set.
  EXPECT_NE(space.materialize(8, 8).front().label(), first.front().label());
}

TEST(SearchSpace, AppliesCellsAxisToSpecCells) {
  tune::Candidate candidate;
  candidate.assignment = {{"cells", "12"}, {"rank", "4"}};
  ModelSpec base;
  base.params = power_law_params();
  const ModelSpec applied = candidate.apply_to(base);
  EXPECT_EQ(applied.cells, 12u);
  EXPECT_EQ(applied.hyper.at("rank"), "4");
  candidate.assignment = {{"cells", "zero"}};
  EXPECT_THROW(candidate.apply_to(base), CheckError);
}

TEST(SearchSpace, ParsesTheAxisGrammar) {
  const auto grid = tune::parse_axis("kernel=rbf|poly");
  EXPECT_EQ(grid.kind, HyperAxis::Kind::Grid);
  EXPECT_EQ(grid.values, (std::vector<std::string>{"rbf", "poly"}));

  const auto log_axis = tune::parse_axis("lambda=1e-6..1e-3:log");
  EXPECT_EQ(log_axis.kind, HyperAxis::Kind::Log);
  EXPECT_DOUBLE_EQ(log_axis.lo, 1e-6);
  EXPECT_DOUBLE_EQ(log_axis.hi, 1e-3);

  EXPECT_EQ(tune::parse_axis("k=1..8:int").kind, HyperAxis::Kind::LinearInt);
  EXPECT_EQ(tune::parse_axis("trees=8..256:logint").kind, HyperAxis::Kind::LogInt);
  EXPECT_EQ(tune::parse_axis("frac=0.1..0.9").kind, HyperAxis::Kind::Linear);

  const auto axes = tune::parse_search_space("k=1..8:int,kernel=rbf|poly");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].name, "k");
  EXPECT_EQ(axes[1].name, "kernel");
  EXPECT_TRUE(tune::parse_search_space("").empty());
}

TEST(SearchSpace, MergeReplacesSameNameAxesAndAppendsNew) {
  const auto merged = tune::merge_axes(
      {HyperAxis::grid("a", {"1"}), HyperAxis::grid("b", {"2"})},
      {HyperAxis::grid("b", {"3", "4"}), HyperAxis::grid("c", {"5"})});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "a");
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_EQ(merged[1].values, (std::vector<std::string>{"3", "4"}));
  EXPECT_EQ(merged[2].name, "c");
}

TEST(SearchSpace, EveryRegistryFamilyDeclaresAValidSpace) {
  for (const auto& family : ModelRegistry::instance().family_names()) {
    SCOPED_TRACE("family " + family);
    ASSERT_TRUE(ModelRegistry::instance().has_search_space(family));
    ModelSpec base;
    base.params = power_law_params();
    const tune::SearchSpace space(
        ModelRegistry::instance().search_space(family, base));
    EXPECT_FALSE(space.axes().empty());
    EXPECT_FALSE(space.materialize(4, 1).empty());
  }
}

// ------------------------------------------------------------- tuner

tune::TunerOptions small_options(std::size_t threads) {
  tune::TunerOptions options;
  options.max_trials = 8;
  options.folds = 2;
  options.rungs = 2;
  options.threads = threads;
  options.seed = 7;
  return options;
}

/// The tuner's determinism contract: for a fixed seed the ranked trials are
/// bitwise-identical no matter how many worker threads evaluate candidates.
TEST(Tuner, SeededDeterminismAcrossThreadCounts) {
  const Dataset data = sample_power_law(256, 11, 0.1);
  for (const std::string family : {"cpr", "rf"}) {
    SCOPED_TRACE("family " + family);
    ModelSpec base;
    base.params = power_law_params();

    const auto reference =
        tune::Tuner(small_options(1)).run(family, base, data);
    for (const std::size_t threads : {2u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const auto outcome =
          tune::Tuner(small_options(threads)).run(family, base, data);
      ASSERT_EQ(outcome.ranked.size(), reference.ranked.size());
      for (std::size_t i = 0; i < outcome.ranked.size(); ++i) {
        const auto& a = reference.ranked[i];
        const auto& b = outcome.ranked[i];
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.config, b.config);
        EXPECT_EQ(a.rung, b.rung);
        EXPECT_EQ(a.samples, b.samples);
        EXPECT_EQ(a.mlogq, b.mlogq);        // bitwise
        EXPECT_EQ(a.rmse_log, b.rmse_log);  // bitwise
      }
      // The refit winners are the same model bit for bit.
      const Dataset probe = sample_power_law(32, 12);
      const auto expected = reference.model->predict_batch(probe.x);
      const auto got = outcome.model->predict_batch(probe.x);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], got[i]) << "probe row " << i;
      }
    }
  }
}

/// Successive halving must spend the full budget on the planted optimum: a
/// cubic-in-log-space dataset where only degree=3 of the OLS family fits.
TEST(Tuner, SuccessiveHalvingPromotesPlantedOptimum) {
  Rng rng(5);
  Dataset data;
  data.x = linalg::Matrix(400, 1);
  data.y.resize(400);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    const double u = std::log(data.x(i, 0)) - 6.0;  // centered log feature
    data.y[i] = std::exp(0.4 * u * u * u - 0.5 * u + 1.0 + rng.normal(0.0, 0.02));
  }
  ModelSpec base;
  base.params = {grid::ParameterSpec::numerical_log("x", 32.0, 4096.0)};

  tune::TunerOptions options;
  options.folds = 2;
  options.rungs = 2;
  options.eta = 3.0;
  options.seed = 3;
  options.threads = 2;
  const tune::SearchSpace space({HyperAxis::grid("degree", {"1", "2", "3"}),
                                 HyperAxis::grid("ridge", {"1e-8"})});
  const auto outcome = tune::Tuner(options).run("ols", base, data, space);

  // The winner is the planted degree and was evaluated on the full budget...
  EXPECT_EQ(outcome.ranked.front().config, "degree=3 ridge=1e-8");
  EXPECT_EQ(outcome.ranked.front().samples, data.size());
  EXPECT_EQ(outcome.best_spec.hyper.at("degree"), "3");
  // ...while the losers were eliminated at the cheap first rung.
  ASSERT_EQ(outcome.ranked.size(), 3u);
  for (std::size_t i = 1; i < outcome.ranked.size(); ++i) {
    EXPECT_LT(outcome.ranked[i].rung, outcome.ranked.front().rung);
    EXPECT_LT(outcome.ranked[i].samples, data.size());
    EXPECT_GT(outcome.ranked[i].mlogq, outcome.ranked.front().mlogq);
  }
}

TEST(Tuner, WinnerRefitMatchesManualConstruction) {
  const Dataset data = sample_power_law(180, 17, 0.1);
  ModelSpec base;
  base.params = power_law_params();
  const auto outcome = tune::Tuner(small_options(2)).run("knn", base, data);

  auto manual = ModelRegistry::instance().create("knn", outcome.best_spec);
  manual->fit(data);
  const Dataset probe = sample_power_law(24, 18);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(manual->predict(probe.config(i)), outcome.model->predict(probe.config(i)));
  }
}

TEST(Tuner, AllCandidatesFailingThrowsCleanly) {
  const Dataset data = sample_power_law(64, 19);
  ModelSpec base;
  base.params = power_law_params();
  // "neighbors" is not a knn hyper key: every candidate is rejected by the
  // registry, and the tuner reports the underlying cause.
  const tune::SearchSpace space({HyperAxis::grid("neighbors", {"1", "2"})});
  try {
    tune::Tuner(small_options(2)).run("knn", base, data, space);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("neighbors"), std::string::npos);
  }
}

TEST(Tuner, RejectsDegenerateOptions) {
  const Dataset data = sample_power_law(64, 20);
  ModelSpec base;
  base.params = power_law_params();
  auto options = small_options(1);
  options.rungs = 0;
  EXPECT_THROW(tune::Tuner(options).run("knn", base, data), CheckError);
  options = small_options(1);
  options.eta = 1.0;
  EXPECT_THROW(tune::Tuner(options).run("knn", base, data), CheckError);
  EXPECT_THROW(tune::Tuner(small_options(1)).run("no-such-family", base, data),
               CheckError);
  EXPECT_THROW(tune::Tuner(small_options(1)).run("knn", base,
                                                 sample_power_law(3, 21)),
               CheckError);
}

}  // namespace
}  // namespace cpr
