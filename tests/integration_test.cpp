// End-to-end integration tests: train CPR and baselines on the synthetic
// benchmark apps and check the paper's qualitative claims on small scales —
// CPR beats trivial predictors, error decreases with training size and rank,
// CPR-E extrapolates where interpolating models fail.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/benchmark_app.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "common/evaluation.hpp"
#include "common/transform.hpp"
#include "core/cpr_extrapolation.hpp"
#include "core/cpr_model.hpp"
#include "metrics/metrics.hpp"

namespace cpr {
namespace {

using apps::BenchmarkApp;
using common::Dataset;
using core::CprModel;
using core::CprOptions;

grid::Discretization make_grid(const BenchmarkApp& app, std::size_t cells) {
  return grid::Discretization(app.parameters(), cells);
}

/// Baseline "model": always predict the training geometric mean.
double geometric_mean_error(const Dataset& train, const Dataset& test) {
  double log_sum = 0.0;
  for (const double y : train.y) log_sum += std::log(y);
  const double gm = std::exp(log_sum / static_cast<double>(train.size()));
  std::vector<double> predictions(test.size(), gm);
  return metrics::mlogq(predictions, test.y);
}

TEST(EndToEnd, CprBeatsGeometricMeanOnEveryApp) {
  for (const auto& app : apps::make_all_apps()) {
    const Dataset train = app->generate_dataset(2048, 21);
    const Dataset test = app->generate_dataset(256, 22);
    const bool high_dim = app->dimensions() >= 6;
    CprOptions options;
    options.rank = high_dim ? 8 : 4;
    CprModel model(make_grid(*app, high_dim ? 8 : 6), options);
    model.fit(train);
    const double cpr_error = common::evaluate_mlogq(model, test);
    const double trivial_error = geometric_mean_error(train, test);
    EXPECT_LT(cpr_error, 0.6 * trivial_error) << app->name();
  }
}

TEST(EndToEnd, CprErrorDecreasesWithTrainingSize) {
  const auto mm = apps::make_matmul();
  const Dataset test = mm->generate_dataset(300, 31);
  double previous_error = 1e9;
  for (const std::size_t n : {256u, 2048u, 16384u}) {
    const Dataset train = mm->generate_dataset(n, 32);
    CprOptions options;
    options.rank = 4;
    CprModel model(make_grid(*mm, 12), options);
    model.fit(train);
    const double error = common::evaluate_mlogq(model, test);
    EXPECT_LT(error, previous_error * 1.15) << "n=" << n;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.08);
}

TEST(EndToEnd, FinerGridsHelpGivenEnoughData) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(16384, 41);
  const Dataset test = mm->generate_dataset(300, 42);
  CprOptions options;
  options.rank = 8;
  CprModel coarse(make_grid(*mm, 4), options);
  CprModel fine(make_grid(*mm, 16), options);
  coarse.fit(train);
  fine.fit(train);
  EXPECT_LT(common::evaluate_mlogq(fine, test),
            common::evaluate_mlogq(coarse, test));
}

TEST(EndToEnd, HighDimensionalAppWorksAtLowDensity) {
  // AMG has an 8-order tensor: even a few thousand samples observe well
  // under 1% of cells, yet CPR must still produce a usable model
  // (Section 7.1.2's density observation).
  const auto amg = apps::make_amg();
  const Dataset train = amg->generate_dataset(4096, 51);
  const Dataset test = amg->generate_dataset(256, 52);
  CprOptions options;
  options.rank = 4;
  CprModel model(make_grid(*amg, 5), options);
  model.fit(train);
  EXPECT_LT(model.observed_density(), 0.05);
  const double cpr_error = common::evaluate_mlogq(model, test);
  EXPECT_LT(cpr_error, 0.5 * geometric_mean_error(train, test));
}

TEST(EndToEnd, CprCompetitiveWithKnnOnLowDim) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(8192, 61);
  const Dataset test = mm->generate_dataset(300, 62);

  CprOptions options;
  options.rank = 6;
  CprModel cpr_model(make_grid(*mm, 16), options);
  cpr_model.fit(train);

  common::LogSpaceRegressor knn(std::make_unique<baselines::KnnRegressor>(),
                                common::FeatureTransform::all_log(3));
  knn.fit(train);

  const double cpr_error = common::evaluate_mlogq(cpr_model, test);
  const double knn_error = common::evaluate_mlogq(knn, test);
  EXPECT_LT(cpr_error, knn_error * 1.5);
  // ...while being orders of magnitude smaller (Figure 7's claim).
  EXPECT_LT(cpr_model.model_size_bytes() * 20, knn.model_size_bytes());
}

TEST(EndToEnd, ExtrapolationCprBeatsInterpolatingBaseline) {
  // Figure-8 style split on MM: train with m in [32, 512], test m in
  // [2048, 4096].
  const auto mm = apps::make_matmul();
  std::vector<std::optional<std::pair<double, double>>> train_bounds(3);
  train_bounds[0] = {32.0, 512.0};
  std::vector<std::optional<std::pair<double, double>>> test_bounds(3);
  test_bounds[0] = {2048.0, 4096.0};
  const Dataset train = mm->generate_dataset(4096, 71, &train_bounds);
  const Dataset test = mm->generate_dataset(256, 72, &test_bounds);

  grid::Discretization disc({grid::ParameterSpec::numerical_log("m", 32, 512, true),
                             grid::ParameterSpec::numerical_log("n", 32, 4096, true),
                             grid::ParameterSpec::numerical_log("k", 32, 4096, true)},
                            8);
  core::CprExtrapolationOptions extrapolation_options;
  extrapolation_options.rank = 2;
  core::CprExtrapolationModel cpr_e(disc, extrapolation_options);
  cpr_e.fit(train);

  common::LogSpaceRegressor knn(std::make_unique<baselines::KnnRegressor>(),
                                common::FeatureTransform::all_log(3));
  knn.fit(train);

  const double cpr_error = common::evaluate_mlogq(cpr_e, test);
  const double knn_error = common::evaluate_mlogq(knn, test);
  EXPECT_LT(cpr_error, knn_error);
  EXPECT_LT(cpr_error, 0.5);
}

TEST(EndToEnd, PredictionsUnbiasedInLogSpace) {
  // Geometric-mean ratio near 1: the log-space loss avoids the
  // under-prediction bias of relative-error fitting (Section 2.2).
  const auto bc = apps::make_broadcast();
  const Dataset train = bc->generate_dataset(4096, 81);
  const Dataset test = bc->generate_dataset(512, 82);
  CprOptions options;
  options.rank = 4;
  CprModel model(make_grid(*bc, 8), options);
  model.fit(train);
  const double gm_ratio =
      metrics::geometric_mean_ratio(model.predict_all(test.x), test.y);
  EXPECT_NEAR(gm_ratio, 1.0, 0.1);
}

TEST(EndToEnd, MarsLessAccurateThanCprOnCategoricalHeavyApp) {
  // Section 7.1.1: MARS configures global models that are significantly
  // less accurate than CPR on high-dimensional apps, especially when
  // integer/categorical parameters dominate the performance surface (AMG:
  // 7 x 10 x 14 categorical choices with pairwise interactions).
  const auto amg = apps::make_amg();
  const Dataset train = amg->generate_dataset(4096, 91);
  const Dataset test = amg->generate_dataset(256, 92);

  CprOptions options;
  options.rank = 4;
  CprModel cpr_model(make_grid(*amg, 5), options);
  cpr_model.fit(train);

  baselines::MarsOptions mars_options;
  mars_options.max_degree = 2;
  common::FeatureTransform transform = common::FeatureTransform::all_log(8);
  // Categorical indices start at 0: keep them linear.
  transform.log_feature[5] = false;
  transform.log_feature[6] = false;
  transform.log_feature[7] = false;
  common::LogSpaceRegressor mars(std::make_unique<baselines::Mars>(mars_options),
                                 transform);
  mars.fit(train);

  EXPECT_LT(common::evaluate_mlogq(cpr_model, test),
            common::evaluate_mlogq(mars, test));
}

TEST(EndToEnd, SerializedCprModelDeploysIdentically) {
  const auto kripke = apps::make_kripke();
  const Dataset train = kripke->generate_dataset(2048, 101);
  CprOptions options;
  options.rank = 3;
  CprModel model(make_grid(*kripke, 4), options);
  model.fit(train);

  BufferSink sink;
  model.serialize(sink);
  BufferSource source(sink.buffer());
  const CprModel deployed = CprModel::deserialize(source);

  const Dataset probe = kripke->generate_dataset(64, 102);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(deployed.predict(probe.config(i)), model.predict(probe.config(i)));
  }
}

}  // namespace
}  // namespace cpr
