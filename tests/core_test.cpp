// Tests for the CPR models: the Section-5.2 interpolation model (log ALS +
// Eq.-5 inference) and the Section-5.3 extrapolation model (AMN positive
// factors + rank-1 SVD + MARS spline).

#include <gtest/gtest.h>

#include <cmath>

#include "common/evaluation.hpp"
#include "core/cpr_extrapolation.hpp"
#include "core/cpr_model.hpp"
#include "test_data.hpp"
#include "util/rng.hpp"

namespace cpr::core {
namespace {

using common::Dataset;
using grid::Config;
using grid::Discretization;
using grid::ParameterSpec;
using testdata::power_law;
using testdata::power_law_grid;
using testdata::sample_power_law;

TEST(CprModel, FitsSeparablePowerLawAccurately) {
  CprOptions options;
  options.rank = 2;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 1));
  const Dataset test = sample_power_law(500, 2);
  EXPECT_LT(common::evaluate_mlogq(model, test), 0.05);
}

TEST(CprModel, PredictBeforeFitThrows) {
  CprModel model(power_law_grid(4));
  EXPECT_THROW(model.predict({100.0, 100.0}), CheckError);
}

TEST(CprModel, RejectsNonPositiveTimes) {
  CprModel model(power_law_grid(4));
  Dataset bad = sample_power_law(10, 3);
  bad.y[5] = 0.0;
  EXPECT_THROW(model.fit(bad), CheckError);
}

TEST(CprModel, RejectsDimensionMismatch) {
  CprModel model(power_law_grid(4));
  Dataset data;
  data.x = linalg::Matrix(4, 3);
  data.y = {1, 1, 1, 1};
  EXPECT_THROW(model.fit(data), CheckError);
}

TEST(CprModel, PredictionsArePositive) {
  CprOptions options;
  options.rank = 4;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(2048, 4, 0.2));
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const Config x{rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
    EXPECT_GT(model.predict(x), 0.0);
  }
}

TEST(CprModel, ClampsOutOfDomainQueries) {
  CprOptions options;
  options.rank = 2;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(2048, 6));
  // Out-of-domain queries are clamped to the nearest in-domain point.
  const double at_edge = model.predict({4096.0, 4096.0});
  const double beyond = model.predict({100000.0, 100000.0});
  EXPECT_NEAR(beyond, at_edge, 1e-9 * at_edge);
}

TEST(CprModel, PredictBatchMatchesScalarPredict) {
  CprOptions options;
  options.rank = 2;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(2048, 9));

  Rng rng(10);
  linalg::Matrix queries(257, 2);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    queries(i, 0) = rng.log_uniform(16.0, 8192.0);  // includes out-of-domain
    queries(i, 1) = rng.log_uniform(16.0, 8192.0);
  }
  const auto batch = model.predict_batch(queries);
  ASSERT_EQ(batch.size(), queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    const Config x{queries(i, 0), queries(i, 1)};
    EXPECT_DOUBLE_EQ(batch[i], model.predict(x)) << "row " << i;
  }

  // The override must be reachable polymorphically: a Regressor* caller gets
  // the same (bitwise) batched results, not a shadowed fallback.
  const common::Regressor* base = &model;
  const auto polymorphic = base->predict_batch(queries);
  ASSERT_EQ(polymorphic.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(polymorphic[i], batch[i]) << "row " << i;
  }
}

TEST(CprModel, PredictBatchBeforeFitThrows) {
  CprModel model(power_law_grid(4));
  EXPECT_THROW(model.predict_batch(linalg::Matrix(3, 2)), CheckError);
}

TEST(CprModel, DensityReported) {
  CprOptions options;
  options.rank = 1;
  CprModel model(power_law_grid(16), options);
  model.fit(sample_power_law(64, 7));
  EXPECT_GT(model.observed_density(), 0.0);
  EXPECT_LE(model.observed_density(), 64.0 / 256.0 + 1e-12);
}

TEST(CprModel, HigherRankFitsNonSeparableBetter) {
  // f has an interaction ridge that rank 1 cannot capture in log space.
  Rng rng(8);
  Dataset data;
  const std::size_t n = 4096;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    const double ratio_penalty =
        1.0 + 2.0 * std::pow(std::sin(std::log(data.x(i, 0) / data.x(i, 1))), 2);
    data.y[i] = power_law(data.config(i)) * ratio_penalty;
  }
  const Dataset test = data.subset([&] {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < 512; ++i) rows.push_back(i);
    return rows;
  }());

  double previous_error = 1e9;
  for (const std::size_t rank : {1u, 4u, 16u}) {
    CprOptions options;
    options.rank = rank;
    options.seed = 99;
    CprModel model(power_law_grid(16), options);
    model.fit(data);
    const double error = common::evaluate_mlogq(model, test);
    EXPECT_LT(error, previous_error + 0.02);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.15);
}

TEST(CprModel, SerializationRoundTripPreservesPredictions) {
  CprOptions options;
  options.rank = 3;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(2048, 9));
  BufferSink sink;
  model.serialize(sink);
  EXPECT_EQ(model.model_size_bytes(), sink.buffer().size());
  BufferSource source(sink.buffer());
  const CprModel restored = CprModel::deserialize(source);
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const Config x{rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
    EXPECT_DOUBLE_EQ(restored.predict(x), model.predict(x));
  }
}

TEST(CprModel, ModelSizeLinearInRank) {
  CprOptions small, large;
  small.rank = 4;
  large.rank = 8;
  CprModel a(power_law_grid(16), small), b(power_law_grid(16), large);
  a.fit(sample_power_law(512, 11));
  b.fit(sample_power_law(512, 11));
  const double ratio =
      static_cast<double>(b.model_size_bytes()) / static_cast<double>(a.model_size_bytes());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.1);
}

TEST(CprModel, CategoricalModesSupported) {
  // Runtime multiplies by a per-category factor; CPR should learn it.
  Rng rng(12);
  const double factors[3] = {1.0, 2.5, 0.6};
  Dataset data;
  const std::size_t n = 3000;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = static_cast<double>(rng.uniform_int(0, 2));
    data.y[i] = 1e-5 * std::pow(data.x(i, 0), 1.2) *
                factors[static_cast<std::size_t>(data.x(i, 1))];
  }
  Discretization disc({ParameterSpec::numerical_log("x", 32.0, 4096.0),
                       ParameterSpec::categorical("solver", 3)},
                      8);
  CprOptions options;
  options.rank = 2;
  CprModel model(disc, options);
  model.fit(data);
  const double t0 = model.predict({512.0, 0.0});
  const double t1 = model.predict({512.0, 1.0});
  const double t2 = model.predict({512.0, 2.0});
  EXPECT_NEAR(t1 / t0, 2.5, 0.3);
  EXPECT_NEAR(t2 / t0, 0.6, 0.1);
}

TEST(CprExtrapolation, InterpolatesInsideDomain) {
  CprExtrapolationOptions options;
  options.rank = 2;
  CprExtrapolationModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 13));
  const Dataset test = sample_power_law(300, 14);
  EXPECT_LT(common::evaluate_mlogq(model, test), 0.15);
}

TEST(CprExtrapolation, ExtrapolatesPowerLawBeyondDomain) {
  // Train on x in [32, 1024]; test at x in [2048, 4096]. The rank-1 + spline
  // path must continue the power law.
  Rng rng(15);
  Dataset train;
  const std::size_t n = 4096;
  train.x = linalg::Matrix(n, 2);
  train.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    train.x(i, 0) = rng.log_uniform(32.0, 1024.0);
    train.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    train.y[i] = power_law(train.config(i));
  }
  Discretization disc({ParameterSpec::numerical_log("x", 32.0, 1024.0),
                       ParameterSpec::numerical_log("y", 32.0, 4096.0)},
                      8);
  CprExtrapolationOptions options;
  options.rank = 2;
  CprExtrapolationModel model(disc, options);
  model.fit(train);

  double max_log_q = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const Config x{rng.log_uniform(2048.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
    const double predicted = model.predict(x);
    ASSERT_GT(predicted, 0.0);
    max_log_q = std::max(max_log_q, std::abs(std::log(predicted / power_law(x))));
  }
  EXPECT_LT(max_log_q, 0.35);
}

TEST(CprExtrapolation, PredictionsPositiveEverywhere) {
  CprExtrapolationOptions options;
  options.rank = 3;
  CprExtrapolationModel model(power_law_grid(6), options);
  model.fit(sample_power_law(2048, 16, 0.3));
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    // Mix of in-domain and far out-of-domain queries.
    const Config x{rng.log_uniform(1.0, 100000.0), rng.log_uniform(1.0, 100000.0)};
    EXPECT_GT(model.predict(x), 0.0) << "at x=" << x[0] << ", y=" << x[1];
  }
}

TEST(CprExtrapolation, SigmaAndVhatExposed) {
  CprExtrapolationOptions options;
  options.rank = 2;
  CprExtrapolationModel model(power_law_grid(6), options);
  model.fit(sample_power_law(1024, 18));
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_GT(model.sigma(j), 0.0);
    ASSERT_EQ(model.v_hat(j).size(), 2u);
    for (const double v : model.v_hat(j)) EXPECT_GT(v, 0.0);
  }
}

TEST(CprExtrapolation, MixedInterpolationExtrapolation) {
  // Extrapolate mode 0 while mode 1 stays in-domain: Section 5.3's mixed
  // rule (freeze extrapolated, interpolate the rest).
  Rng rng(19);
  Dataset train;
  const std::size_t n = 4096;
  train.x = linalg::Matrix(n, 2);
  train.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    train.x(i, 0) = rng.log_uniform(32.0, 512.0);
    train.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    train.y[i] = power_law(train.config(i));
  }
  Discretization disc({ParameterSpec::numerical_log("x", 32.0, 512.0),
                       ParameterSpec::numerical_log("y", 32.0, 4096.0)},
                      8);
  CprExtrapolationOptions options;
  options.rank = 2;
  CprExtrapolationModel model(disc, options);
  model.fit(train);
  // Prediction should still vary correctly with the in-domain coordinate.
  const double t_small = model.predict({2048.0, 64.0});
  const double t_large = model.predict({2048.0, 2048.0});
  const double expected_ratio = std::pow(2048.0 / 64.0, 0.8);
  EXPECT_NEAR(std::log(t_large / t_small), std::log(expected_ratio), 0.4);
}

TEST(CprExtrapolation, ModelSizeIncludesSplines) {
  CprExtrapolationOptions options;
  options.rank = 2;
  CprExtrapolationModel model(power_law_grid(6), options);
  model.fit(sample_power_law(1024, 20));
  // Must be at least as large as the bare CP factors.
  EXPECT_GT(model.model_size_bytes(), model.cp().parameter_bytes());
}

}  // namespace
}  // namespace cpr::core

// Appended: tests for the ablation/optimizer switches of CprOptions.
namespace cpr::core {
namespace {

TEST(CprOptions, ExpSpaceInterpolationFloorsNonPositive) {
  CprOptions options;
  options.rank = 2;
  options.interpolation = CprInterpolation::ExpSpace;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(2048, 30));
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const Config x{rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
    EXPECT_GE(model.predict(x), 1e-16);
  }
}

TEST(CprOptions, ExpAndLogInterpolationAgreeInInterior) {
  // Away from cell edges and with a smooth model, the two inference rules
  // should nearly coincide.
  CprOptions log_options, exp_options;
  log_options.rank = exp_options.rank = 2;
  exp_options.interpolation = CprInterpolation::ExpSpace;
  CprModel log_model(power_law_grid(8), log_options);
  CprModel exp_model(power_law_grid(8), exp_options);
  const Dataset train = sample_power_law(4096, 32);
  log_model.fit(train);
  exp_model.fit(train);
  const Config interior{500.0, 500.0};
  EXPECT_NEAR(std::log(log_model.predict(interior) / exp_model.predict(interior)), 0.0,
              0.05);
}

TEST(CprOptions, GaussianInitWorksOnLowOrder) {
  CprOptions options;
  options.rank = 2;
  options.init = CprInit::Gaussian;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 33));
  EXPECT_LT(common::evaluate_mlogq(model, sample_power_law(300, 34)), 0.1);
}

TEST(CprOptions, CcdOptimizerFitsPowerLaw) {
  CprOptions options;
  options.rank = 2;
  options.optimizer = CprOptimizer::Ccd;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 35));
  EXPECT_LT(common::evaluate_mlogq(model, sample_power_law(300, 36)), 0.1);
}

TEST(CprOptions, SgdOptimizerFitsPowerLaw) {
  CprOptions options;
  options.rank = 2;
  options.optimizer = CprOptimizer::Sgd;
  options.max_sweeps = 200;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 37));
  EXPECT_LT(common::evaluate_mlogq(model, sample_power_law(300, 38)), 0.2);
}

TEST(CprOptions, NoCenteringStillWorksOnModerateScale) {
  CprOptions options;
  options.rank = 2;
  options.center_log_values = false;
  CprModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 39));
  EXPECT_LT(common::evaluate_mlogq(model, sample_power_law(300, 40)), 0.2);
}

TEST(CprOptions, MoreRestartsNeverHurtTrainingObjective) {
  const Dataset train = sample_power_law(2048, 41, 0.3);
  CprOptions one, three;
  one.rank = three.rank = 4;
  one.restarts = 1;
  three.restarts = 3;
  CprModel a(power_law_grid(8), one), b(power_law_grid(8), three);
  a.fit(train);
  b.fit(train);
  EXPECT_LE(b.report().final_objective(), a.report().final_objective() + 1e-12);
}

}  // namespace
}  // namespace cpr::core
