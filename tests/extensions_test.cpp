// Tests for the extension modules built on top of the paper's scope:
// Tucker decomposition + completion, the Tucker-backed performance model,
// online/streaming CPR, the hyper-parameter tuner, the uncompressed
// regular-grid baseline, non-iid sampling strategies, and dataset CSV I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "apps/benchmark_app.hpp"
#include "apps/sampling.hpp"
#include "baselines/grid_interpolator.hpp"
#include "common/dataset_io.hpp"
#include "common/evaluation.hpp"
#include "completion/tucker_als.hpp"
#include "core/cpr_model.hpp"
#include "core/online_cpr.hpp"
#include "core/tucker_perf_model.hpp"
#include "core/tuning.hpp"
#include "tensor/tucker_model.hpp"
#include "test_data.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using common::Dataset;
using grid::Config;
using grid::Discretization;
using grid::ParameterSpec;

// ---------- TuckerModel ----------

TEST(TuckerModel, ShapeValidation) {
  EXPECT_THROW(tensor::TuckerModel({4, 4}, {5, 2}), CheckError);  // R > I
  EXPECT_THROW(tensor::TuckerModel({4, 4}, {2}), CheckError);     // order mismatch
  const tensor::TuckerModel m({4, 5, 6}, {2, 3, 2});
  EXPECT_EQ(m.order(), 3u);
  EXPECT_EQ(m.core_dims(), (tensor::Dims{2, 3, 2}));
}

TEST(TuckerModel, EvalMatchesBruteForce) {
  Rng rng(1);
  tensor::TuckerModel m({3, 4, 2}, {2, 2, 2});
  m.init_ones(rng, 0.5);
  // Brute-force: sum over core entries.
  const tensor::Index idx{2, 1, 0};
  double expected = 0.0;
  tensor::Index c(3, 0);
  std::size_t flat = 0;
  do {
    expected += m.core()[flat++] * m.factor(0)(idx[0], c[0]) * m.factor(1)(idx[1], c[1]) *
                m.factor(2)(idx[2], c[2]);
  } while (tensor::next_index(c, m.core_dims()));
  EXPECT_NEAR(m.eval(idx), expected, 1e-12);
}

TEST(TuckerModel, ModeWeightsConsistentWithEval) {
  Rng rng(2);
  tensor::TuckerModel m({3, 3, 3}, {2, 2, 2});
  m.init_ones(rng, 0.4);
  const tensor::Index idx{1, 2, 0};
  std::vector<double> w(2);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    m.mode_weights(idx, mode, w.data());
    double via_weights = 0.0;
    for (std::size_t r = 0; r < 2; ++r) via_weights += m.factor(mode)(idx[mode], r) * w[r];
    EXPECT_NEAR(via_weights, m.eval(idx), 1e-12);
  }
}

TEST(TuckerModel, DesignVectorConsistentWithEval) {
  Rng rng(3);
  tensor::TuckerModel m({4, 3}, {2, 3});
  m.init_ones(rng, 0.4);
  const tensor::Index idx{3, 1};
  std::vector<double> z(m.core().size());
  m.design_vector(idx, z.data());
  double via_design = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) via_design += z[k] * m.core()[k];
  EXPECT_NEAR(via_design, m.eval(idx), 1e-12);
}

TEST(TuckerModel, SerializationRoundTrip) {
  Rng rng(4);
  tensor::TuckerModel m({5, 4, 3}, {2, 2, 3});
  m.init_ones(rng, 0.3);
  BufferSink sink;
  m.serialize(sink);
  EXPECT_EQ(m.parameter_bytes(), sink.buffer().size());
  BufferSource source(sink.buffer());
  const auto restored = tensor::TuckerModel::deserialize(source);
  tensor::Index idx(3, 0);
  do {
    EXPECT_DOUBLE_EQ(restored.eval(idx), m.eval(idx));
  } while (tensor::next_index(idx, m.dims()));
}

// ---------- Tucker completion ----------

TEST(TuckerCompletion, RecoversExactTuckerTensor) {
  Rng rng(5);
  tensor::TuckerModel truth({6, 6, 6}, {2, 2, 2});
  truth.init_ones(rng, 0.5);
  tensor::SparseTensor observed({6, 6, 6});
  const auto total = tensor::element_count({6, 6, 6});
  const auto rows = rng.sample_without_replacement(total, total * 7 / 10);
  for (const auto flat : rows) {
    const auto idx = tensor::delinearize(flat, {6, 6, 6});
    observed.push_back(idx, truth.eval(idx));
  }
  tensor::TuckerModel model({6, 6, 6}, {2, 2, 2});
  Rng init_rng(6);
  model.init_ones(init_rng, 0.2);
  completion::CompletionOptions options;
  options.regularization = 1e-10;
  options.max_sweeps = 100;
  options.tol = 1e-12;
  const auto report = completion::tucker_complete(observed, model, options);
  EXPECT_LT(report.final_objective(), 1e-4);
  // Held-out check over all cells.
  double max_error = 0.0;
  tensor::Index idx(3, 0);
  do {
    max_error = std::max(max_error, std::abs(model.eval(idx) - truth.eval(idx)));
  } while (tensor::next_index(idx, truth.dims()));
  EXPECT_LT(max_error, 0.05);
}

TEST(TuckerCompletion, ObjectiveDecreasesMonotonically) {
  Rng rng(7);
  tensor::TuckerModel truth({5, 5, 5}, {2, 2, 2});
  truth.init_ones(rng, 0.5);
  tensor::SparseTensor observed({5, 5, 5});
  for (std::size_t flat = 0; flat < 125; flat += 2) {
    const auto idx = tensor::delinearize(flat, {5, 5, 5});
    observed.push_back(idx, truth.eval(idx));
  }
  tensor::TuckerModel model({5, 5, 5}, {2, 2, 2});
  Rng init_rng(8);
  model.init_ones(init_rng, 0.3);
  completion::CompletionOptions options;
  options.max_sweeps = 15;
  options.tol = 0.0;
  const auto report = completion::tucker_complete(observed, model, options);
  for (std::size_t s = 1; s < report.objective_history.size(); ++s) {
    EXPECT_LE(report.objective_history[s], report.objective_history[s - 1] + 1e-9);
  }
}

TEST(TuckerCompletion, RejectsHugeCore) {
  tensor::SparseTensor t({16, 16, 16});
  t.push_back({0, 0, 0}, 1.0);
  tensor::TuckerModel model({16, 16, 16}, {16, 16, 16});  // core 4096... boundary
  completion::CompletionOptions options;
  // 16^3 = 4096 = the limit; one more mode would exceed. Use a 4-mode case.
  tensor::SparseTensor t4({16, 16, 16, 16});
  t4.push_back({0, 0, 0, 0}, 1.0);
  tensor::TuckerModel big({16, 16, 16, 16}, {16, 16, 16, 16});
  EXPECT_THROW(completion::tucker_complete(t4, big, options), CheckError);
}

// ---------- TuckerPerfModel ----------

using testdata::power_law_grid;
using testdata::sample_power_law;

TEST(TuckerPerfModel, FitsPowerLaw) {
  core::TuckerPerfOptions options;
  options.mode_rank = 2;
  core::TuckerPerfModel model(power_law_grid(8), options);
  model.fit(sample_power_law(4096, 9));
  EXPECT_LT(common::evaluate_mlogq(model, sample_power_law(300, 10)), 0.1);
}

TEST(TuckerPerfModel, WorksOnRealApp) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(4096, 11);
  const Dataset test = mm->generate_dataset(256, 12);
  core::TuckerPerfOptions options;
  options.mode_rank = 4;
  core::TuckerPerfModel model(Discretization(mm->parameters(), 12), options);
  model.fit(train);
  EXPECT_LT(common::evaluate_mlogq(model, test), 0.15);
  EXPECT_GT(model.observed_density(), 0.0);
}

TEST(TuckerPerfModel, PredictBeforeFitThrows) {
  core::TuckerPerfModel model(power_law_grid(4));
  EXPECT_THROW(model.predict({100.0, 100.0}), CheckError);
}

// ---------- Online CPR ----------

TEST(OnlineCpr, BatchFitMatchesStreamingIngest) {
  const auto mm = apps::make_matmul();
  const Dataset data = mm->generate_dataset(2048, 13);
  Discretization disc(mm->parameters(), 8);

  core::OnlineCprOptions options;
  options.rank = 4;
  core::OnlineCprModel batch(disc, options);
  batch.fit(data);

  core::OnlineCprModel streaming(disc, options);
  options.refresh_interval = 1u << 30;  // no auto refresh
  for (std::size_t i = 0; i < data.size(); ++i) {
    streaming.observe(data.config(i), data.y[i]);
  }
  streaming.refresh();

  // Identical cell statistics + same cold-fit path: identical predictions.
  const Dataset probe = mm->generate_dataset(64, 14);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_NEAR(std::log(batch.predict(probe.config(i)) /
                         streaming.predict(probe.config(i))),
                0.0, 1e-9);
  }
}

TEST(OnlineCpr, AccuracyImprovesWithMoreObservations) {
  const auto mm = apps::make_matmul();
  const Dataset stream = mm->generate_dataset(8192, 15);
  const Dataset test = mm->generate_dataset(256, 16);
  Discretization disc(mm->parameters(), 12);
  core::OnlineCprOptions options;
  options.rank = 4;
  options.refresh_interval = 1u << 30;
  core::OnlineCprModel model(disc, options);

  std::vector<double> errors;
  std::size_t cursor = 0;
  for (const std::size_t checkpoint : {512u, 2048u, 8192u}) {
    for (; cursor < checkpoint; ++cursor) {
      model.observe(stream.config(cursor), stream.y[cursor]);
    }
    model.refresh();
    errors.push_back(common::evaluate_mlogq(model, test));
  }
  EXPECT_LT(errors.back(), errors.front());
  EXPECT_LT(errors.back(), 0.1);
}

TEST(OnlineCpr, AutoRefreshTriggers) {
  const auto mm = apps::make_matmul();
  const Dataset stream = mm->generate_dataset(600, 17);
  Discretization disc(mm->parameters(), 6);
  core::OnlineCprOptions options;
  options.rank = 2;
  options.refresh_interval = 100;
  core::OnlineCprModel model(disc, options);
  // Cold fit on the first 100.
  for (std::size_t i = 0; i < 100; ++i) model.observe(stream.config(i), stream.y[i]);
  model.refresh();
  const auto after_cold = model.refresh_count();
  for (std::size_t i = 100; i < 600; ++i) model.observe(stream.config(i), stream.y[i]);
  EXPECT_GE(model.refresh_count(), after_cold + 4);  // every ~100 observations
}

TEST(OnlineCpr, WarmRefreshIsCheaperThanColdFit) {
  // Warm refresh runs only refresh_sweeps sweeps; just verify it stays
  // accurate after drift-free incremental data.
  const auto bc = apps::make_broadcast();
  const Dataset head = bc->generate_dataset(2048, 18);
  const Dataset tail = bc->generate_dataset(2048, 19);
  const Dataset test = bc->generate_dataset(256, 20);
  core::OnlineCprOptions options;
  options.rank = 4;
  options.refresh_interval = 1u << 30;
  core::OnlineCprModel model(grid::Discretization(bc->parameters(), 8), options);
  model.fit(head);
  const double before = common::evaluate_mlogq(model, test);
  for (std::size_t i = 0; i < tail.size(); ++i) model.observe(tail.config(i), tail.y[i]);
  model.refresh();
  const double after = common::evaluate_mlogq(model, test);
  EXPECT_LT(after, before * 1.2 + 0.02);  // no degradation from warm updates
}

// ---------- Tuner ----------

TEST(Tuner, ValidationSplitSelectsReasonableModel) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(4096, 21);
  const Dataset test = mm->generate_dataset(256, 22);
  core::CprTuner tuner;
  tuner.specs = mm->parameters();
  tuner.mode = core::TuneMode::ValidationSplit;
  core::CprTuningGrid tuning_grid;
  tuning_grid.cells = {4, 8, 16};
  tuning_grid.ranks = {2, 4, 8};
  tuning_grid.regularizations = {1e-4};
  const auto [model, result] = tuner.tune(train, nullptr, tuning_grid);
  EXPECT_EQ(result.sweep.size(), tuning_grid.configurations());
  EXPECT_LT(common::evaluate_mlogq(model, test), 0.1);
}

TEST(Tuner, TestSetMinimumMatchesExhaustiveMinimum) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(1024, 23);
  const Dataset test = mm->generate_dataset(256, 24);
  core::CprTuner tuner;
  tuner.specs = mm->parameters();
  tuner.mode = core::TuneMode::TestSetMinimum;
  core::CprTuningGrid tuning_grid;
  tuning_grid.cells = {4, 8};
  tuning_grid.ranks = {2, 4};
  tuning_grid.regularizations = {1e-4};
  const auto [model, result] = tuner.tune(train, &test, tuning_grid);
  double manual_best = 1e300;
  for (const auto& candidate : result.sweep) manual_best = std::min(manual_best, candidate.error);
  EXPECT_DOUBLE_EQ(result.best_error, manual_best);
}

TEST(Tuner, RequiresTestSetInTestMode) {
  core::CprTuner tuner;
  tuner.specs = apps::make_matmul()->parameters();
  tuner.mode = core::TuneMode::TestSetMinimum;
  const Dataset train = apps::make_matmul()->generate_dataset(64, 25);
  EXPECT_THROW(tuner.tune(train, nullptr, {}), CheckError);
}

TEST(Tuner, ProgressCallbackInvoked) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(512, 26);
  core::CprTuner tuner;
  tuner.specs = mm->parameters();
  std::size_t calls = 0;
  tuner.progress = [&](const core::CprTuningResult::Candidate&) { ++calls; };
  core::CprTuningGrid tuning_grid;
  tuning_grid.cells = {4};
  tuning_grid.ranks = {2, 4};
  tuning_grid.regularizations = {1e-4};
  tuner.tune(train, nullptr, tuning_grid);
  EXPECT_EQ(calls, 2u);
}

// ---------- GridInterpolator ----------

TEST(GridInterpolator, MatchesCprAccuracyAtFullDensity) {
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(16384, 27);
  const Dataset test = mm->generate_dataset(256, 28);
  baselines::GridInterpolator dense_grid(Discretization(mm->parameters(), 8));
  dense_grid.fit(train);
  EXPECT_GT(dense_grid.observed_density(), 0.99);
  EXPECT_LT(common::evaluate_mlogq(dense_grid, test), 0.1);
}

TEST(GridInterpolator, SizeIsFullGridRegardlessOfData) {
  Discretization disc(apps::make_matmul()->parameters(), 16);
  baselines::GridInterpolator model(disc);
  model.fit(apps::make_matmul()->generate_dataset(64, 29));
  EXPECT_GE(model.model_size_bytes(), disc.cell_count() * sizeof(double));
}

TEST(GridInterpolator, CprIsSmallerAtComparableAccuracy) {
  // The compression claim, head-to-head on a dense grid.
  const auto mm = apps::make_matmul();
  const Dataset train = mm->generate_dataset(16384, 30);
  const Dataset test = mm->generate_dataset(256, 31);
  Discretization disc(mm->parameters(), 16);

  baselines::GridInterpolator dense_grid(disc);
  dense_grid.fit(train);
  core::CprOptions options;
  options.rank = 8;
  core::CprModel cpr(disc, options);
  cpr.fit(train);

  EXPECT_LT(common::evaluate_mlogq(cpr, test),
            common::evaluate_mlogq(dense_grid, test) * 1.5);
  EXPECT_LT(cpr.model_size_bytes() * 4, dense_grid.model_size_bytes());
}

TEST(GridInterpolator, FallsBackToGlobalMeanWhenSparse) {
  Discretization disc(apps::make_amg()->parameters(), 6);
  baselines::GridInterpolator model(disc);
  const auto amg = apps::make_amg();
  model.fit(amg->generate_dataset(512, 32));
  EXPECT_LT(model.observed_density(), 0.01);
  // Still produces finite positive predictions everywhere.
  const Dataset probe = amg->generate_dataset(64, 33);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const double prediction = model.predict(probe.config(i));
    EXPECT_TRUE(std::isfinite(prediction));
    EXPECT_GT(prediction, 0.0);
  }
}

// ---------- Sampling strategies ----------

class SamplingStrategies : public ::testing::TestWithParam<apps::SamplingStrategy> {};

TEST_P(SamplingStrategies, ProducesValidConstrainedConfigs) {
  const auto fmm = apps::make_exafmm();
  Discretization reference(fmm->parameters(), 6);
  const Dataset data =
      apps::generate_with_strategy(*fmm, 256, 34, GetParam(), &reference);
  EXPECT_EQ(data.size(), 256u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(fmm->satisfies_constraints(data.config(i))) << "row " << i;
    EXPECT_GT(data.y[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, SamplingStrategies,
                         ::testing::Values(apps::SamplingStrategy::IidRandom,
                                           apps::SamplingStrategy::LatinHypercube,
                                           apps::SamplingStrategy::GridAligned,
                                           apps::SamplingStrategy::Exploitative));

TEST(Sampling, LatinHypercubeStratifiesMarginals) {
  // Each of n strata used once => every decile of the sampling range holds
  // exactly n/10 samples (for unconstrained apps).
  const auto mm = apps::make_matmul();
  const std::size_t n = 500;
  const Dataset data =
      apps::generate_with_strategy(*mm, n, 35, apps::SamplingStrategy::LatinHypercube);
  // Check dimension 0 in log space.
  std::vector<std::size_t> decile_counts(10, 0);
  const double lo = std::log(32.0), hi = std::log(4096.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto d = static_cast<std::size_t>((std::log(data.x(i, 0)) - lo) / (hi - lo) * 10.0);
    if (d > 9) d = 9;
    ++decile_counts[d];
  }
  for (const auto count : decile_counts) {
    EXPECT_NEAR(static_cast<double>(count), 50.0, 8.0);
  }
}

TEST(Sampling, GridAlignedHitsMidpointsExactly) {
  const auto mm = apps::make_matmul();
  Discretization reference(mm->parameters(), 8);
  const Dataset data = apps::generate_with_strategy(
      *mm, 128, 36, apps::SamplingStrategy::GridAligned, &reference);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto idx = reference.cell_of(data.config(i));
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(data.x(i, j), reference.midpoint(j, idx[j]));
    }
  }
}

TEST(Sampling, ExploitativeConcentratesOnFastRegions) {
  const auto mm = apps::make_matmul();
  const std::size_t n = 1000;
  const Dataset data =
      apps::generate_with_strategy(*mm, n, 37, apps::SamplingStrategy::Exploitative);
  // Second half (exploitation) should have much lower mean log time.
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < n / 2; ++i) head += std::log(data.y[i]);
  for (std::size_t i = n / 2; i < n; ++i) tail += std::log(data.y[i]);
  EXPECT_LT(tail, head - 0.5 * static_cast<double>(n / 2));
}

TEST(Sampling, StrategyNamesExposed) {
  EXPECT_STREQ(apps::sampling_strategy_name(apps::SamplingStrategy::LatinHypercube), "lhs");
}

// ---------- Dataset CSV I/O ----------

TEST(DatasetIo, RoundTripPreservesData) {
  const auto mm = apps::make_matmul();
  const Dataset data = mm->generate_dataset(64, 38);
  const auto path =
      (std::filesystem::temp_directory_path() / "cpr_dataset_io_test.csv").string();
  common::save_dataset_csv(data, {"m", "n", "k"}, path);
  const auto loaded = common::load_dataset_csv(path);
  EXPECT_EQ(loaded.parameter_names, (std::vector<std::string>{"m", "n", "k"}));
  ASSERT_EQ(loaded.data.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(loaded.data.x(i, j), data.x(i, j));
    EXPECT_DOUBLE_EQ(loaded.data.y[i], data.y[i]);
  }
  std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsMalformedContent) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto write = [&](const std::string& name, const std::string& content) {
    const auto path = (dir / name).string();
    std::ofstream out(path);
    out << content;
    return path;
  };
  // Wrong last column name.
  auto p1 = write("cpr_io_bad1.csv", "a,b,time\n1,2,3\n");
  EXPECT_THROW(common::load_dataset_csv(p1), CheckError);
  // Ragged row.
  auto p2 = write("cpr_io_bad2.csv", "a,seconds\n1,2\n1\n");
  EXPECT_THROW(common::load_dataset_csv(p2), CheckError);
  // Non-numeric field.
  auto p3 = write("cpr_io_bad3.csv", "a,seconds\nfoo,2\n");
  EXPECT_THROW(common::load_dataset_csv(p3), CheckError);
  // Non-positive time.
  auto p4 = write("cpr_io_bad4.csv", "a,seconds\n1,0\n");
  EXPECT_THROW(common::load_dataset_csv(p4), CheckError);
  // No data rows.
  auto p5 = write("cpr_io_bad5.csv", "a,seconds\n");
  EXPECT_THROW(common::load_dataset_csv(p5), CheckError);
  for (const auto& p : {p1, p2, p3, p4, p5}) std::filesystem::remove(p);
}

TEST(DatasetIo, LoadedDataTrainsModel) {
  const auto bc = apps::make_broadcast();
  const Dataset data = bc->generate_dataset(2048, 39);
  const auto path =
      (std::filesystem::temp_directory_path() / "cpr_dataset_io_train.csv").string();
  common::save_dataset_csv(data, {"nodes", "ppn", "bytes"}, path);
  const auto loaded = common::load_dataset_csv(path);
  core::CprOptions options;
  options.rank = 4;
  core::CprModel model(Discretization(bc->parameters(), 8), options);
  model.fit(loaded.data);
  EXPECT_LT(common::evaluate_mlogq(model, bc->generate_dataset(256, 40)), 0.25);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpr
