// Tests for the Table-1 error metrics: definitions, the table's algebraic
// identities (error-expression column), scale independence of MLogQ/MLogQ2,
// and the first-order Taylor equivalences of rows 6-7.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cpr::metrics {
namespace {

TEST(Metrics, KnownValues) {
  const std::vector<double> m{2.0, 8.0};
  const std::vector<double> y{1.0, 10.0};
  EXPECT_NEAR(mape(m, y), 0.5 * (1.0 + 0.2), 1e-12);
  EXPECT_NEAR(mae(m, y), 0.5 * (1.0 + 2.0), 1e-12);
  EXPECT_NEAR(mse(m, y), 0.5 * (1.0 + 4.0), 1e-12);
  EXPECT_NEAR(smape(m, y), 0.5 * (2.0 / 3.0 + 4.0 / 18.0), 1e-12);
  EXPECT_NEAR(mlogq(m, y), 0.5 * (std::log(2.0) + std::log(10.0 / 8.0)), 1e-12);
  EXPECT_NEAR(mlogq2(m, y),
              0.5 * (std::pow(std::log(2.0), 2) + std::pow(std::log(0.8), 2)), 1e-12);
}

TEST(Metrics, PerfectPredictionsGiveZero) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mae(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(smape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mlogq(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mlogq2(y, y), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean_ratio(y, y), 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), CheckError);
  EXPECT_THROW(mlogq({}, {}), CheckError);
}

TEST(Metrics, MLogQScaleIndependent) {
  // Over-prediction by a and under-prediction by a get the same penalty —
  // the property Section 2.2 selects MLogQ for.
  const double y = 3.7, a = 5.0;
  const double over = mlogq({a * y}, {y});
  const double under = mlogq({y / a}, {y});
  EXPECT_NEAR(over, under, 1e-12);
  EXPECT_NEAR(over, std::log(a), 1e-12);
}

TEST(Metrics, MLogQ2ScaleIndependent) {
  const double y = 0.02, a = 7.0;
  EXPECT_NEAR(mlogq2({a * y}, {y}), mlogq2({y / a}, {y}), 1e-12);
}

TEST(Metrics, MapeBiasedTowardUnderprediction) {
  // Relative error penalizes overprediction more: |ay-y|/y = a-1 grows
  // unboundedly while |y/a - y|/y <= 1 — the bias Section 2.2 cites.
  const double y = 1.0, a = 10.0;
  EXPECT_GT(mape({a * y}, {y}), mape({y / a}, {y}));
}

TEST(Metrics, MLogQInvariantToUnits) {
  // Rescaling both predictions and truths (e.g. seconds -> ms) is a no-op.
  const std::vector<double> m{1.2, 3.4, 0.7};
  const std::vector<double> y{1.0, 3.0, 1.0};
  std::vector<double> m_ms = m, y_ms = y;
  for (auto& v : m_ms) v *= 1000.0;
  for (auto& v : y_ms) v *= 1000.0;
  EXPECT_NEAR(mlogq(m, y), mlogq(m_ms, y_ms), 1e-12);
}

TEST(Metrics, NonPositivePredictionsFloored) {
  // Figure-1 treatment: non-positive entries become 1e-16.
  const double value = mlogq({-5.0}, {1.0});
  EXPECT_NEAR(value, std::abs(std::log(1e-16)), 1e-9);
}

// ---- Table 1 identities: metric == error-expression with eps = m/y - 1 ----

class Table1Identities : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    const std::size_t n = 64;
    truths_.resize(n);
    predictions_.resize(n);
    eps_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      truths_[k] = rng.log_uniform(1e-3, 1e3);
      eps_[k] = rng.uniform(-0.5, 1.0);  // keep m positive
      predictions_[k] = truths_[k] * (1.0 + eps_[k]);
    }
  }
  std::vector<double> truths_, predictions_, eps_;
};

TEST_P(Table1Identities, MapeRow) {
  double expected = 0.0;
  for (const double e : eps_) expected += std::abs(e);
  EXPECT_NEAR(mape(predictions_, truths_), expected / eps_.size(), 1e-10);
}

TEST_P(Table1Identities, MaeRow) {
  double expected = 0.0;
  for (std::size_t k = 0; k < eps_.size(); ++k) {
    expected += std::abs(truths_[k] * eps_[k]);
  }
  EXPECT_NEAR(mae(predictions_, truths_), expected / eps_.size(), 1e-9);
}

TEST_P(Table1Identities, MseRow) {
  double expected = 0.0;
  for (std::size_t k = 0; k < eps_.size(); ++k) {
    const double term = truths_[k] * eps_[k];
    expected += term * term;
  }
  EXPECT_NEAR(mse(predictions_, truths_), expected / eps_.size(),
              1e-9 * (1.0 + expected));
}

TEST_P(Table1Identities, SmapeRow) {
  double expected = 0.0;
  for (const double e : eps_) expected += 2.0 * std::abs(e / (2.0 + e));
  EXPECT_NEAR(smape(predictions_, truths_), expected / eps_.size(), 1e-10);
}

TEST_P(Table1Identities, LgmapeRow) {
  double expected = 0.0;
  for (const double e : eps_) expected += std::log(std::max(std::abs(e), 1e-16));
  EXPECT_NEAR(lgmape(predictions_, truths_), expected / eps_.size(), 1e-9);
}

TEST_P(Table1Identities, MLogQTaylorRow) {
  // |log(1+eps)| = |eps/(1+eps)| + O(eps^2): verify the first-order match
  // for small errors.
  std::vector<double> small_predictions(truths_.size());
  for (std::size_t k = 0; k < truths_.size(); ++k) {
    small_predictions[k] = truths_[k] * (1.0 + 0.01 * eps_[k]);
  }
  double taylor = 0.0;
  for (const double e : eps_) {
    const double se = 0.01 * e;
    taylor += std::abs(se / (1.0 + se));
  }
  EXPECT_NEAR(mlogq(small_predictions, truths_), taylor / eps_.size(), 1e-4);
}

TEST_P(Table1Identities, MLogQ2TaylorRow) {
  std::vector<double> small_predictions(truths_.size());
  for (std::size_t k = 0; k < truths_.size(); ++k) {
    small_predictions[k] = truths_[k] * (1.0 + 0.01 * eps_[k]);
  }
  double taylor = 0.0;
  for (const double e : eps_) {
    const double se = 0.01 * e;
    const double term = se / (1.0 + se);
    taylor += term * term;
  }
  EXPECT_NEAR(mlogq2(small_predictions, truths_), taylor / eps_.size(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table1Identities, ::testing::Values(1, 2, 3, 4, 5));

TEST(Metrics, GeometricMeanRatioDetectsBias) {
  const std::vector<double> y{1.0, 2.0, 4.0};
  std::vector<double> over(y), under(y);
  for (auto& v : over) v *= 2.0;
  for (auto& v : under) v *= 0.5;
  EXPECT_NEAR(geometric_mean_ratio(over, y), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean_ratio(under, y), 0.5, 1e-12);
}

}  // namespace
}  // namespace cpr::metrics
